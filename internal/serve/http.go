package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// HTTP front end for the Engine: the wire protocol of cmd/graphhd-serve.
//
//	POST /v1/predict        {"graph": {...}}            → {"class": c}
//	POST /v1/predict/batch  {"graphs": [{...}, ...]}    → {"classes": [...]}
//	GET  /v1/model          model card (dimension, classes, footprint, config, build)
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/traces      flight recorder: last-N per-batch trace records
//	POST /admin/reload      re-read the model artifact and hot-swap it
//
// Graphs travel in the internal/graph JSON wire form. Admission-control
// rejections map to 429, malformed or config-incompatible graphs to 400.
// Every response carries an X-Request-Id header; with a Logger configured
// each request is logged structurally under that id.
//
// NewDebugHandler builds the separate diagnostics surface (pprof, expvar,
// runtime stats) cmd/graphhd-serve mounts on -debug-addr.

// HandlerOptions configures NewHandler.
type HandlerOptions struct {
	// ModelPath is the artifact /admin/reload re-reads. Empty disables the
	// reload endpoint.
	ModelPath string
	// ClassNames optionally maps class indices to names echoed in predict
	// responses (e.g. Dataset.ClassNames).
	ClassNames []string
	// Limits bounds decoded request graphs; the zero value applies
	// graph.DefaultCodecLimits.
	Limits graph.CodecLimits
	// MaxBodyBytes caps request bodies; non-positive means 32 MiB.
	MaxBodyBytes int64
	// Logger receives structured per-request access logs (level Debug;
	// level Warn for 5xx and 429 responses) keyed by request id. Nil
	// disables request logging; request ids are assigned either way.
	Logger *slog.Logger
}

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	Graph *graph.GraphJSON `json:"graph"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	Class     int    `json:"class"`
	ClassName string `json:"class_name,omitempty"`
}

// PredictBatchRequest is the body of POST /v1/predict/batch.
type PredictBatchRequest struct {
	Graphs []*graph.GraphJSON `json:"graphs"`
}

// PredictBatchResponse is the body of a successful POST /v1/predict/batch.
type PredictBatchResponse struct {
	Classes    []int    `json:"classes"`
	ClassNames []string `json:"class_names,omitempty"`
}

// ModelInfo is the body of GET /v1/model: the model card of the currently
// installed predictor, plus the SIMD kernel tier the replica is actually
// running (a replica silently degraded to a lower tier shows up here and
// in /healthz, not just in node-level CPU inventory).
type ModelInfo struct {
	Dimension          int    `json:"dimension"`
	Classes            int    `json:"classes"`
	MemoryBytes        int    `json:"memory_bytes"`
	Centrality         string `json:"centrality"`
	PageRankIterations int    `json:"page_rank_iterations"`
	Seed               uint64 `json:"seed"`
	UseVertexLabels    bool   `json:"use_vertex_labels"`
	Reloads            uint64 `json:"reloads"`
	KernelTier         string `json:"kernel_tier"`
	CPUFeatures        string `json:"cpu_features,omitempty"`
	// GoVersion and VCSRevision identify the build serving this model
	// (see BuildInfo); VCSRevision is empty for unstamped builds.
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	// Cascade fields are present only when two-stage prefix-sliced
	// classification is active on the installed predictor.
	CascadePrefix int `json:"cascade_prefix,omitempty"`
	CascadeMargin int `json:"cascade_margin,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

type handler struct {
	e    *Engine
	opts HandlerOptions
}

// NewHandler wraps an engine in the HTTP API described above.
func NewHandler(e *Engine, opts HandlerOptions) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	h := &handler{e: e, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", h.predict)
	mux.HandleFunc("POST /v1/predict/batch", h.predictBatch)
	mux.HandleFunc("GET /v1/model", h.model)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /debug/traces", h.traces)
	mux.HandleFunc("POST /admin/reload", h.reload)
	return requestLog(opts.Logger, mux)
}

// reqBase randomizes the id space per process so ids from different
// replicas don't collide in aggregated logs; the counter makes each id
// unique and roughly ordered within a process.
var (
	reqBase = rand.Uint64()
	reqSeq  atomic.Uint64
)

func nextRequestID() string {
	return strconv.FormatUint(reqBase^(reqSeq.Add(1)*0x9e3779b97f4a7c15), 16)
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// requestLog assigns every request an id (echoed as X-Request-Id) and,
// with a logger configured, emits one structured access-log line per
// request: Debug for the happy path so a saturated replica isn't
// throttled by its own logging, Warn for server-side failures and shed
// load (429).
func requestLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextRequestID()
		w.Header().Set("X-Request-Id", id)
		if log == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		level := slog.LevelDebug
		if sw.status >= 500 || sw.status == http.StatusTooManyRequests {
			level = slog.LevelWarn
		}
		if !log.Enabled(r.Context(), level) {
			return
		}
		log.LogAttrs(r.Context(), level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeEngineError maps engine admission errors onto HTTP status codes.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// decodeGraph validates one wire graph against the codec limits and the
// installed encoder's configuration.
func (h *handler) decodeGraph(w *graph.GraphJSON) (*graph.Graph, error) {
	if w == nil {
		return nil, errors.New("serve: missing graph")
	}
	g, err := w.Graph(h.opts.Limits)
	if err != nil {
		return nil, err
	}
	if g.Labeled() && !h.e.Predictor().Encoder().Config().UseVertexLabels {
		return nil, errors.New("serve: vertex_labels supplied but the loaded model does not use vertex labels")
	}
	return g, nil
}

func (h *handler) className(c int) string {
	if c >= 0 && c < len(h.opts.ClassNames) {
		return h.opts.ClassNames[c]
	}
	return ""
}

func (h *handler) predict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	g, err := h.decodeGraph(req.Graph)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	class, err := h.e.Predict(r.Context(), g)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Class: class, ClassName: h.className(class)})
}

func (h *handler) predictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	graphs := make([]*graph.Graph, len(req.Graphs))
	for i, wg := range req.Graphs {
		g, err := h.decodeGraph(wg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("graphs[%d]: %w", i, err))
			return
		}
		graphs[i] = g
	}
	classes, err := h.e.PredictBatch(r.Context(), graphs)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := PredictBatchResponse{Classes: classes}
	if len(h.opts.ClassNames) > 0 {
		resp.ClassNames = make([]string, len(classes))
		for i, c := range classes {
			resp.ClassNames[i] = h.className(c)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) model(w http.ResponseWriter, r *http.Request) {
	p := h.e.Predictor()
	cfg := p.Encoder().Config()
	ks := hdc.Kernels()
	bi := Build()
	info := ModelInfo{
		Dimension:          cfg.Dimension,
		Classes:            p.NumClasses(),
		MemoryBytes:        p.MemoryBytes(),
		Centrality:         cfg.Centrality.String(),
		PageRankIterations: cfg.PageRankIterations,
		Seed:               cfg.Seed,
		UseVertexLabels:    cfg.UseVertexLabels,
		Reloads:            h.e.Reloads(),
		KernelTier:         ks.Active.String(),
		CPUFeatures:        ks.CPUFeatures,
		GoVersion:          bi.GoVersion,
		VCSRevision:        bi.VCSRevision,
	}
	if c, ok := p.Cascade(); ok {
		info.CascadePrefix, info.CascadeMargin = c.DPrefix, c.Margin
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// First line stays exactly "ok" for probes that match on it; the
	// kernel lines surface the dispatch decision per replica.
	ks := hdc.Kernels()
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "kernel: %s\n", ks.Active)
	if ks.CPUFeatures != "" {
		fmt.Fprintf(w, "cpu: %s\n", ks.CPUFeatures)
	}
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, h.e.Metrics(), h.e.Predictor())
}

// TracesResponse is the body of GET /debug/traces: the flight recorder's
// retained per-batch trace records, newest first.
type TracesResponse struct {
	Depth  int           `json:"depth"` // ring capacity in records
	Traces []TraceRecord `json:"traces"`
}

func (h *handler) traces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TracesResponse{
		Depth:  h.e.TraceDepth(),
		Traces: h.e.Traces(),
	})
}

func (h *handler) reload(w http.ResponseWriter, r *http.Request) {
	if h.opts.ModelPath == "" {
		writeError(w, http.StatusNotFound, errors.New("serve: no model path configured for reload"))
		return
	}
	if err := h.e.SwapFromFile(h.opts.ModelPath); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	p := h.e.Predictor()
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded":     true,
		"classes":      p.NumClasses(),
		"dimension":    p.Encoder().Dimension(),
		"memory_bytes": p.MemoryBytes(),
	})
}

// RuntimeStats is the body of GET /debug/runtime on the debug listener:
// a point-in-time Go runtime health summary for a replica.
type RuntimeStats struct {
	Goroutines     int       `json:"goroutines"`
	HeapAllocBytes uint64    `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64    `json:"heap_sys_bytes"`
	GCCycles       uint32    `json:"gc_cycles"`
	GCPauseSeconds float64   `json:"gc_pause_seconds_total"`
	LastGC         time.Time `json:"last_gc,omitempty"`
	Build          BuildInfo `json:"build"`
	Kernel         string    `json:"kernel"`
}

// NewDebugHandler builds the diagnostics mux cmd/graphhd-serve mounts on
// its separate -debug-addr listener:
//
//	/debug/pprof/*   net/http/pprof profiles (CPU, heap, goroutine, ...)
//	/debug/vars      expvar (cmdline, memstats)
//	/debug/traces    the engine's flight recorder (same payload as the API)
//	/debug/runtime   RuntimeStats JSON
//	/metrics         Prometheus exposition (so the debug port is scrapable)
//
// The profiling endpoints can stall the process (CPU profiles
// stop-the-world sample, heap dumps are large) and leak operational
// detail, which is why they live on their own listener: bind it to
// loopback or an operator-only network, never the serving address.
func NewDebugHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, TracesResponse{Depth: e.TraceDepth(), Traces: e.Traces()})
	})
	mux.HandleFunc("GET /debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st := RuntimeStats{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			GCCycles:       ms.NumGC,
			GCPauseSeconds: float64(ms.PauseTotalNs) * 1e-9,
			Build:          Build(),
			Kernel:         hdc.ActiveKernel().String(),
		}
		if ms.LastGC > 0 {
			st.LastGC = time.Unix(0, int64(ms.LastGC))
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, e.Metrics(), e.Predictor())
	})
	return mux
}
