package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// HTTP front end for the Router: the wire protocol of cmd/graphhd-serve.
//
//	POST /v1/predict                       {"graph": {...}}         → {"class": c}
//	POST /v1/predict/batch                 {"graphs": [{...}, ...]} → {"classes": [...]}
//	POST /v1/models/{model}/predict        same, routed to a named model
//	POST /v1/models/{model}/predict/batch  same, routed to a named model
//	POST /v1/feedback                      {"graph": {...}, "label": c}  → online trainer
//	POST /v1/models/{model}/feedback       same, for a named model; also accepts {"samples": [...]}
//	GET  /v1/model          default model card (dimension, classes, config, build)
//	GET  /v1/models         registry table: every resident model and replica
//	GET  /healthz           liveness probe (+ resident-model summary)
//	GET  /metrics           Prometheus text exposition, {model,replica} labeled
//	GET  /debug/traces      flight recorder, merged across replicas
//	POST /admin/reload      rolling-reload every file-backed model
//	POST /admin/models      {"action": "load"|"evict"|"reload", "name": ..., "path": ...}
//
// The unnamed predict routes delegate to the router's default model, so a
// single-model deployment keeps its PR 3 wire protocol unchanged. Tenancy
// rides on the X-Tenant request header (absent → "default"); a tenant past
// its in-flight quota gets 429 without its request touching any replica
// queue. Admission-control rejections map to 429, unknown models to 404,
// malformed or config-incompatible graphs to 400.
//
// Graphs travel in the internal/graph JSON wire form. Every response
// carries an X-Request-Id header; with a Logger configured each request
// is logged structurally under that id.
//
// NewDebugHandler builds the separate diagnostics surface (pprof, expvar,
// runtime stats) cmd/graphhd-serve mounts on -debug-addr.

// HandlerOptions configures NewHandler.
type HandlerOptions struct {
	// ClassNames optionally maps class indices to names echoed in predict
	// responses (e.g. Dataset.ClassNames). They describe the default
	// model; responses for other named models carry indices only.
	ClassNames []string
	// Limits bounds decoded request graphs; the zero value applies
	// graph.DefaultCodecLimits.
	Limits graph.CodecLimits
	// MaxBodyBytes caps request bodies; non-positive means 32 MiB.
	MaxBodyBytes int64
	// Logger receives structured per-request access logs (level Debug;
	// level Warn for 5xx and 429 responses) keyed by request id. Nil
	// disables request logging; request ids are assigned either way.
	Logger *slog.Logger
}

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	Graph *graph.GraphJSON `json:"graph"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	Class     int    `json:"class"`
	ClassName string `json:"class_name,omitempty"`
}

// PredictBatchRequest is the body of POST /v1/predict/batch.
type PredictBatchRequest struct {
	Graphs []*graph.GraphJSON `json:"graphs"`
}

// PredictBatchResponse is the body of a successful POST /v1/predict/batch.
type PredictBatchResponse struct {
	Classes    []int    `json:"classes"`
	ClassNames []string `json:"class_names,omitempty"`
}

// FeedbackRequest is the body of POST /v1/feedback: one labeled graph,
// or several under "samples" (both forms may be combined). Labels index
// the model's class space, [0, classes).
type FeedbackRequest struct {
	Graph   *graph.GraphJSON `json:"graph,omitempty"`
	Label   *int             `json:"label,omitempty"`
	Samples []FeedbackSample `json:"samples,omitempty"`
}

// FeedbackSample is one labeled graph in a FeedbackRequest.
type FeedbackSample struct {
	Graph *graph.GraphJSON `json:"graph"`
	Label *int             `json:"label"`
}

// FeedbackResponse is the body of a successful POST /v1/feedback.
type FeedbackResponse struct {
	// Accepted is how many samples entered the feedback buffer.
	Accepted int `json:"accepted"`
	// Buffered is the buffer's fill after this request.
	Buffered int `json:"buffered"`
}

// ModelInfo is the body of GET /v1/model: the model card of the default
// model's current predictor, plus the SIMD kernel tier the replica is
// actually running and a summary of the registry it lives in.
type ModelInfo struct {
	Model              string `json:"model"`
	Version            uint64 `json:"version"`
	Replicas           int    `json:"replicas"`
	Dimension          int    `json:"dimension"`
	Classes            int    `json:"classes"`
	MemoryBytes        int    `json:"memory_bytes"`
	Centrality         string `json:"centrality"`
	PageRankIterations int    `json:"page_rank_iterations"`
	Seed               uint64 `json:"seed"`
	UseVertexLabels    bool   `json:"use_vertex_labels"`
	// Reloads counts rolling swaps since the model was loaded.
	Reloads     uint64 `json:"reloads"`
	KernelTier  string `json:"kernel_tier"`
	CPUFeatures string `json:"cpu_features,omitempty"`
	// GoVersion and VCSRevision identify the build serving this model
	// (see BuildInfo); VCSRevision is empty for unstamped builds.
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	// Cascade fields are present only when two-stage prefix-sliced
	// classification is active on the installed predictor.
	CascadePrefix int `json:"cascade_prefix,omitempty"`
	CascadeMargin int `json:"cascade_margin,omitempty"`
	// Revision is the online-update count stamped into the serving
	// predictor when it was snapshotted; 0 for predictors straight from
	// Fit/Train. A gap against the trainer's live revision means updates
	// not yet promoted.
	Revision uint64 `json:"revision"`
	// ModelsResident and RegistryBytes summarize the registry this model
	// is resident in.
	ModelsResident int   `json:"models_resident"`
	RegistryBytes  int64 `json:"registry_bytes"`
}

// ModelsResponse is the body of GET /v1/models: the registry table plus
// router-level tenancy state — what cmd/inspect -models renders.
type ModelsResponse struct {
	DefaultModel string         `json:"default_model"`
	Registry     RegistryStatus `json:"registry"`
	Tenants      []TenantStatus `json:"tenants,omitempty"`
	// Trainers lists the online learning loops attached to resident
	// models, including each one's last promote/rollback verdict.
	Trainers []TrainerStatus `json:"trainers,omitempty"`
}

// AdminModelRequest is the body of POST /admin/models.
type AdminModelRequest struct {
	// Action is "load" (read Path, install under Name), "evict" (remove
	// Name), or "reload" (re-read Name's remembered artifact path).
	Action string `json:"action"`
	Name   string `json:"name"`
	Path   string `json:"path,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

type handler struct {
	rt   *Router
	opts HandlerOptions
}

// NewHandler wraps a router in the HTTP API described above.
func NewHandler(rt *Router, opts HandlerOptions) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	h := &handler{rt: rt, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		h.predict(w, r, "")
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		h.predictBatch(w, r, "")
	})
	mux.HandleFunc("POST /v1/models/{model}/predict", func(w http.ResponseWriter, r *http.Request) {
		h.predict(w, r, r.PathValue("model"))
	})
	mux.HandleFunc("POST /v1/models/{model}/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		h.predictBatch(w, r, r.PathValue("model"))
	})
	mux.HandleFunc("POST /v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		h.feedback(w, r, "")
	})
	mux.HandleFunc("POST /v1/models/{model}/feedback", func(w http.ResponseWriter, r *http.Request) {
		h.feedback(w, r, r.PathValue("model"))
	})
	mux.HandleFunc("GET /v1/model", h.model)
	mux.HandleFunc("GET /v1/models", h.models)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /debug/traces", h.traces)
	mux.HandleFunc("POST /admin/reload", h.reload)
	mux.HandleFunc("POST /admin/models", h.adminModels)
	return requestLog(opts.Logger, mux)
}

// reqBase randomizes the id space per process so ids from different
// replicas don't collide in aggregated logs; the counter makes each id
// unique and roughly ordered within a process.
var (
	reqBase = rand.Uint64()
	reqSeq  atomic.Uint64
)

func nextRequestID() string {
	return strconv.FormatUint(reqBase^(reqSeq.Add(1)*0x9e3779b97f4a7c15), 16)
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// requestLog assigns every request an id (echoed as X-Request-Id) and,
// with a logger configured, emits one structured access-log line per
// request: Debug for the happy path so a saturated replica isn't
// throttled by its own logging, Warn for server-side failures and shed
// load (429).
func requestLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextRequestID()
		w.Header().Set("X-Request-Id", id)
		if log == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		level := slog.LevelDebug
		if sw.status >= 500 || sw.status == http.StatusTooManyRequests {
			level = slog.LevelWarn
		}
		if !log.Enabled(r.Context(), level) {
			return
		}
		log.LogAttrs(r.Context(), level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeEngineError maps router/engine admission errors onto HTTP status
// codes. Both shed-load conditions — a full replica queue and an
// exhausted tenant quota — map to 429; the distinction is visible in the
// body and in which counter moved.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrQuotaExceeded),
		errors.Is(err, ErrFeedbackBufferFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrModelNotFound), errors.Is(err, ErrNoTrainer):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBadFeedbackLabel):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrRegistryClosed),
		errors.Is(err, ErrTrainerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// tenantOf extracts the request's tenant from the X-Tenant header.
func tenantOf(r *http.Request) string {
	return r.Header.Get("X-Tenant")
}

// decodeGraph validates one wire graph against the codec limits and the
// target model's encoder configuration.
func (h *handler) decodeGraph(w *graph.GraphJSON, pred *core.Predictor) (*graph.Graph, error) {
	if w == nil {
		return nil, errors.New("serve: missing graph")
	}
	g, err := w.Graph(h.opts.Limits)
	if err != nil {
		return nil, err
	}
	if g.Labeled() && !pred.Encoder().Config().UseVertexLabels {
		return nil, errors.New("serve: vertex_labels supplied but the loaded model does not use vertex labels")
	}
	return g, nil
}

// className maps a class index onto the configured default-model class
// names; named-model responses (model != "") carry indices only.
func (h *handler) className(model string, c int) string {
	if model == "" && c >= 0 && c < len(h.opts.ClassNames) {
		return h.opts.ClassNames[c]
	}
	return ""
}

func (h *handler) predict(w http.ResponseWriter, r *http.Request, model string) {
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	pred, err := h.rt.Predictor(model)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	g, err := h.decodeGraph(req.Graph, pred)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	class, err := h.rt.Predict(r.Context(), tenantOf(r), model, g)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Class: class, ClassName: h.className(model, class)})
}

func (h *handler) predictBatch(w http.ResponseWriter, r *http.Request, model string) {
	var req PredictBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	pred, err := h.rt.Predictor(model)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	graphs := make([]*graph.Graph, len(req.Graphs))
	for i, wg := range req.Graphs {
		g, err := h.decodeGraph(wg, pred)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("graphs[%d]: %w", i, err))
			return
		}
		graphs[i] = g
	}
	classes, err := h.rt.PredictBatch(r.Context(), tenantOf(r), model, graphs)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := PredictBatchResponse{Classes: classes}
	if model == "" && len(h.opts.ClassNames) > 0 {
		resp.ClassNames = make([]string, len(classes))
		for i, c := range classes {
			resp.ClassNames[i] = h.className(model, c)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// feedback ingests labeled graphs into the model's online trainer. Every
// failure mode has a deliberate non-500 mapping: malformed bodies,
// unvalidatable graphs and out-of-range labels are the client's fault
// (400), a model without a trainer is 404, and a full feedback buffer
// sheds with 429 — ingest pressure never turns into server errors or
// touches the predict path.
func (h *handler) feedback(w http.ResponseWriter, r *http.Request, model string) {
	var req FeedbackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	m, err := h.rt.target(model)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	tr := m.trainer.Load()
	if tr == nil {
		writeEngineError(w, fmt.Errorf("%w: %q", ErrNoTrainer, m.name))
		return
	}

	// Collect the single-sample and batched forms, then validate every
	// graph and label before feeding any — a bad sample rejects the whole
	// request instead of half-applying it.
	samples := req.Samples
	if req.Graph != nil || req.Label != nil {
		samples = append([]FeedbackSample{{Graph: req.Graph, Label: req.Label}}, samples...)
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: feedback needs a graph and label (or samples)"))
		return
	}
	pred := m.pred.Load()
	graphs := make([]*graph.Graph, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		if s.Label == nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("samples[%d]: missing label", i))
			return
		}
		if *s.Label < 0 || *s.Label >= tr.NumClasses() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("samples[%d]: %w: %d not in [0,%d)", i, ErrBadFeedbackLabel, *s.Label, tr.NumClasses()))
			return
		}
		g, err := h.decodeGraph(s.Graph, pred)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("samples[%d]: %w", i, err))
			return
		}
		graphs[i], labels[i] = g, *s.Label
	}
	accepted := 0
	for i := range graphs {
		if err := tr.Feed(graphs[i], labels[i]); err != nil {
			// Partial ingest under buffer pressure is fine — feedback is
			// best-effort by design — but the client learns how far it got.
			if accepted > 0 && errors.Is(err, ErrFeedbackBufferFull) {
				writeJSON(w, http.StatusAccepted, FeedbackResponse{Accepted: accepted, Buffered: len(tr.buf)})
				return
			}
			writeEngineError(w, err)
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusAccepted, FeedbackResponse{Accepted: accepted, Buffered: len(tr.buf)})
}

func (h *handler) model(w http.ResponseWriter, r *http.Request) {
	m, err := h.rt.target("")
	if err != nil {
		writeEngineError(w, err)
		return
	}
	reg := h.rt.Registry()
	p := m.pred.Load()
	cfg := p.Encoder().Config()
	ks := hdc.Kernels()
	bi := Build()
	info := ModelInfo{
		Model:              m.name,
		Version:            m.version.Load(),
		Replicas:           len(m.replicas),
		Dimension:          cfg.Dimension,
		Classes:            p.NumClasses(),
		MemoryBytes:        p.MemoryBytes(),
		Centrality:         cfg.Centrality.String(),
		PageRankIterations: cfg.PageRankIterations,
		Seed:               cfg.Seed,
		UseVertexLabels:    cfg.UseVertexLabels,
		Reloads:            m.version.Load() - 1,
		KernelTier:         ks.Active.String(),
		CPUFeatures:        ks.CPUFeatures,
		GoVersion:          bi.GoVersion,
		VCSRevision:        bi.VCSRevision,
		ModelsResident:     reg.Len(),
		RegistryBytes:      reg.Bytes(),
	}
	if c, ok := p.Cascade(); ok {
		info.CascadePrefix, info.CascadeMargin = c.DPrefix, c.Margin
	}
	info.Revision = p.Revision()
	writeJSON(w, http.StatusOK, info)
}

func (h *handler) models(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ModelsResponse{
		DefaultModel: h.rt.DefaultModel(),
		Registry:     h.rt.Registry().Status(),
		Tenants:      h.rt.Tenants(),
		Trainers:     h.rt.Registry().TrainerStatuses(),
	})
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// First line stays exactly "ok" for probes that match on it; the
	// kernel lines surface the dispatch decision per replica, the model
	// lines the registry's residency.
	ks := hdc.Kernels()
	reg := h.rt.Registry()
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "kernel: %s\n", ks.Active)
	if ks.CPUFeatures != "" {
		fmt.Fprintf(w, "cpu: %s\n", ks.CPUFeatures)
	}
	fmt.Fprintf(w, "models: %d\n", reg.Len())
	fmt.Fprintf(w, "model_bytes: %d\n", reg.Bytes())
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteRouterMetrics(w, h.rt)
}

// TracesResponse is the body of GET /debug/traces: the per-batch trace
// records retained across every replica's flight recorder, newest first.
type TracesResponse struct {
	Depth  int           `json:"depth"` // summed ring capacity in records
	Traces []TraceRecord `json:"traces"`
}

func (h *handler) traces(w http.ResponseWriter, r *http.Request) {
	reg := h.rt.Registry()
	writeJSON(w, http.StatusOK, TracesResponse{
		Depth:  reg.TraceDepth(),
		Traces: reg.Traces(),
	})
}

func (h *handler) reload(w http.ResponseWriter, r *http.Request) {
	n, err := h.rt.Registry().ReloadAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if n == 0 {
		writeError(w, http.StatusNotFound, errors.New("serve: no model has an artifact path to reload"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded": true,
		"models":   n,
	})
}

// adminModels is the model-lifecycle endpoint: load a new artifact under
// a name, evict a resident model, or reload one from its remembered path.
func (h *handler) adminModels(w http.ResponseWriter, r *http.Request) {
	var req AdminModelRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: model name required"))
		return
	}
	reg := h.rt.Registry()
	var err error
	switch req.Action {
	case "load":
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, errors.New("serve: load needs a path"))
			return
		}
		err = reg.LoadFile(req.Name, req.Path)
	case "evict":
		err = reg.Evict(req.Name)
	case "reload":
		err = reg.Reload(req.Name)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown action %q", req.Action))
		return
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrModelNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrModelTooLarge):
		writeError(w, http.StatusInsufficientStorage, err)
		return
	case errors.Is(err, ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"action": req.Action,
		"name":   req.Name,
		"models": reg.Len(),
	})
}

// RuntimeStats is the body of GET /debug/runtime on the debug listener:
// a point-in-time Go runtime health summary for a replica.
type RuntimeStats struct {
	Goroutines     int       `json:"goroutines"`
	HeapAllocBytes uint64    `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64    `json:"heap_sys_bytes"`
	GCCycles       uint32    `json:"gc_cycles"`
	GCPauseSeconds float64   `json:"gc_pause_seconds_total"`
	LastGC         time.Time `json:"last_gc,omitempty"`
	Build          BuildInfo `json:"build"`
	Kernel         string    `json:"kernel"`
}

// NewDebugHandler builds the diagnostics mux cmd/graphhd-serve mounts on
// its separate -debug-addr listener:
//
//	/debug/pprof/*   net/http/pprof profiles (CPU, heap, goroutine, ...)
//	/debug/vars      expvar (cmdline, memstats)
//	/debug/traces    the merged flight recorders (same payload as the API)
//	/debug/runtime   RuntimeStats JSON
//	/metrics         Prometheus exposition (so the debug port is scrapable)
//
// The profiling endpoints can stall the process (CPU profiles
// stop-the-world sample, heap dumps are large) and leak operational
// detail, which is why they live on their own listener: bind it to
// loopback or an operator-only network, never the serving address.
func NewDebugHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		reg := rt.Registry()
		writeJSON(w, http.StatusOK, TracesResponse{Depth: reg.TraceDepth(), Traces: reg.Traces()})
	})
	mux.HandleFunc("GET /debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st := RuntimeStats{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			GCCycles:       ms.NumGC,
			GCPauseSeconds: float64(ms.PauseTotalNs) * 1e-9,
			Build:          Build(),
			Kernel:         hdc.ActiveKernel().String(),
		}
		if ms.LastGC > 0 {
			st.LastGC = time.Unix(0, int64(ms.LastGC))
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteRouterMetrics(w, rt)
	})
	return mux
}
