package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// HTTP front end for the Engine: the wire protocol of cmd/graphhd-serve.
//
//	POST /v1/predict        {"graph": {...}}            → {"class": c}
//	POST /v1/predict/batch  {"graphs": [{...}, ...]}    → {"classes": [...]}
//	GET  /v1/model          model card (dimension, classes, footprint, config)
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text exposition
//	POST /admin/reload      re-read the model artifact and hot-swap it
//
// Graphs travel in the internal/graph JSON wire form. Admission-control
// rejections map to 429, malformed or config-incompatible graphs to 400.

// HandlerOptions configures NewHandler.
type HandlerOptions struct {
	// ModelPath is the artifact /admin/reload re-reads. Empty disables the
	// reload endpoint.
	ModelPath string
	// ClassNames optionally maps class indices to names echoed in predict
	// responses (e.g. Dataset.ClassNames).
	ClassNames []string
	// Limits bounds decoded request graphs; the zero value applies
	// graph.DefaultCodecLimits.
	Limits graph.CodecLimits
	// MaxBodyBytes caps request bodies; non-positive means 32 MiB.
	MaxBodyBytes int64
}

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	Graph *graph.GraphJSON `json:"graph"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	Class     int    `json:"class"`
	ClassName string `json:"class_name,omitempty"`
}

// PredictBatchRequest is the body of POST /v1/predict/batch.
type PredictBatchRequest struct {
	Graphs []*graph.GraphJSON `json:"graphs"`
}

// PredictBatchResponse is the body of a successful POST /v1/predict/batch.
type PredictBatchResponse struct {
	Classes    []int    `json:"classes"`
	ClassNames []string `json:"class_names,omitempty"`
}

// ModelInfo is the body of GET /v1/model: the model card of the currently
// installed predictor, plus the SIMD kernel tier the replica is actually
// running (a replica silently degraded to a lower tier shows up here and
// in /healthz, not just in node-level CPU inventory).
type ModelInfo struct {
	Dimension          int    `json:"dimension"`
	Classes            int    `json:"classes"`
	MemoryBytes        int    `json:"memory_bytes"`
	Centrality         string `json:"centrality"`
	PageRankIterations int    `json:"page_rank_iterations"`
	Seed               uint64 `json:"seed"`
	UseVertexLabels    bool   `json:"use_vertex_labels"`
	Reloads            uint64 `json:"reloads"`
	KernelTier         string `json:"kernel_tier"`
	CPUFeatures        string `json:"cpu_features,omitempty"`
	// Cascade fields are present only when two-stage prefix-sliced
	// classification is active on the installed predictor.
	CascadePrefix int `json:"cascade_prefix,omitempty"`
	CascadeMargin int `json:"cascade_margin,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

type handler struct {
	e    *Engine
	opts HandlerOptions
}

// NewHandler wraps an engine in the HTTP API described above.
func NewHandler(e *Engine, opts HandlerOptions) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	h := &handler{e: e, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", h.predict)
	mux.HandleFunc("POST /v1/predict/batch", h.predictBatch)
	mux.HandleFunc("GET /v1/model", h.model)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("POST /admin/reload", h.reload)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeEngineError maps engine admission errors onto HTTP status codes.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// decodeGraph validates one wire graph against the codec limits and the
// installed encoder's configuration.
func (h *handler) decodeGraph(w *graph.GraphJSON) (*graph.Graph, error) {
	if w == nil {
		return nil, errors.New("serve: missing graph")
	}
	g, err := w.Graph(h.opts.Limits)
	if err != nil {
		return nil, err
	}
	if g.Labeled() && !h.e.Predictor().Encoder().Config().UseVertexLabels {
		return nil, errors.New("serve: vertex_labels supplied but the loaded model does not use vertex labels")
	}
	return g, nil
}

func (h *handler) className(c int) string {
	if c >= 0 && c < len(h.opts.ClassNames) {
		return h.opts.ClassNames[c]
	}
	return ""
}

func (h *handler) predict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	g, err := h.decodeGraph(req.Graph)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	class, err := h.e.Predict(r.Context(), g)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Class: class, ClassName: h.className(class)})
}

func (h *handler) predictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	graphs := make([]*graph.Graph, len(req.Graphs))
	for i, wg := range req.Graphs {
		g, err := h.decodeGraph(wg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("graphs[%d]: %w", i, err))
			return
		}
		graphs[i] = g
	}
	classes, err := h.e.PredictBatch(r.Context(), graphs)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := PredictBatchResponse{Classes: classes}
	if len(h.opts.ClassNames) > 0 {
		resp.ClassNames = make([]string, len(classes))
		for i, c := range classes {
			resp.ClassNames[i] = h.className(c)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) model(w http.ResponseWriter, r *http.Request) {
	p := h.e.Predictor()
	cfg := p.Encoder().Config()
	ks := hdc.Kernels()
	info := ModelInfo{
		Dimension:          cfg.Dimension,
		Classes:            p.NumClasses(),
		MemoryBytes:        p.MemoryBytes(),
		Centrality:         cfg.Centrality.String(),
		PageRankIterations: cfg.PageRankIterations,
		Seed:               cfg.Seed,
		UseVertexLabels:    cfg.UseVertexLabels,
		Reloads:            h.e.Reloads(),
		KernelTier:         ks.Active.String(),
		CPUFeatures:        ks.CPUFeatures,
	}
	if c, ok := p.Cascade(); ok {
		info.CascadePrefix, info.CascadeMargin = c.DPrefix, c.Margin
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// First line stays exactly "ok" for probes that match on it; the
	// kernel lines surface the dispatch decision per replica.
	ks := hdc.Kernels()
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "kernel: %s\n", ks.Active)
	if ks.CPUFeatures != "" {
		fmt.Fprintf(w, "cpu: %s\n", ks.CPUFeatures)
	}
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, h.e.Metrics(), h.e.Predictor())
}

func (h *handler) reload(w http.ResponseWriter, r *http.Request) {
	if h.opts.ModelPath == "" {
		writeError(w, http.StatusNotFound, errors.New("serve: no model path configured for reload"))
		return
	}
	if err := h.e.SwapFromFile(h.opts.ModelPath); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	p := h.e.Predictor()
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded":     true,
		"classes":      p.NumClasses(),
		"dimension":    p.Encoder().Dimension(),
		"memory_bytes": p.MemoryBytes(),
	})
}
