package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphhd/internal/core"
)

// promSample is one parsed exposition sample: metric name, sorted label
// pairs, and value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a strict parser for the Prometheus text exposition
// format (version 0.0.4) subset WriteMetrics emits. It enforces the
// format contract a real scraper relies on — any deviation fails the
// test with a line-numbered error:
//
//   - every sample line is `name value` or `name{k="v",...} value`
//   - every family has exactly one # HELP and one # TYPE line, both
//     before its first sample
//   - a family's samples are contiguous (no interleaving)
//   - label values are properly quoted, values parse as Go floats
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{} // families with at least one sample
	lastFamily := ""
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without docstring: %q", lineNo, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if seen[name] {
				t.Fatalf("line %d: HELP for %s after its samples", lineNo, name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if seen[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment: %q", lineNo, line)
		}

		s := promSample{labels: map[string]string{}}
		rest := line
		if open := strings.IndexByte(rest, '{'); open >= 0 {
			s.name = rest[:open]
			close := strings.LastIndexByte(rest, '}')
			if close < open {
				t.Fatalf("line %d: unclosed label set: %q", lineNo, line)
			}
			for _, pair := range splitLabels(t, lineNo, rest[open+1:close]) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("line %d: malformed label %q", lineNo, pair)
				}
				uq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("line %d: label %s value not quoted: %q", lineNo, k, v)
				}
				if _, dup := s.labels[k]; dup {
					t.Fatalf("line %d: duplicate label %s", lineNo, k)
				}
				s.labels[k] = uq
			}
			rest = rest[close+1:]
		} else {
			var ok bool
			s.name, rest, ok = strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: sample without value: %q", lineNo, line)
			}
			rest = " " + rest
		}
		valStr := strings.TrimSpace(rest)
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		s.value = v

		fam := family(s.name)
		if !helped[fam] {
			t.Fatalf("line %d: sample %s before # HELP %s", lineNo, s.name, fam)
		}
		if _, ok := typed[fam]; !ok {
			t.Fatalf("line %d: sample %s before # TYPE %s", lineNo, s.name, fam)
		}
		if seen[fam] && fam != lastFamily {
			t.Fatalf("line %d: family %s interleaved (reopened after %s)", lineNo, fam, lastFamily)
		}
		seen[fam] = true
		lastFamily = fam
		samples = append(samples, s)
	}
	for name := range helped {
		if _, ok := typed[name]; !ok {
			t.Fatalf("HELP without TYPE for %s", name)
		}
		if !seen[name] {
			t.Fatalf("family %s declared but has no samples", name)
		}
	}
	return samples
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(t *testing.T, lineNo int, body string) []string {
	t.Helper()
	var out []string
	inQuote, escaped, start := false, false, 0
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in labels %q", lineNo, body)
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// checkHistogram validates one (possibly labeled) histogram series:
// cumulative non-decreasing le buckets, a +Inf bucket, +Inf == _count,
// and a _sum consistent with the observation count.
func checkHistogram(t *testing.T, samples []promSample, name string, want map[string]string) {
	t.Helper()
	match := func(s promSample) bool {
		for k, v := range want {
			if s.labels[k] != v {
				return false
			}
		}
		return true
	}
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	var sum, count float64
	var haveSum, haveCount, haveInf bool
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			if !match(s) {
				continue
			}
			le := s.labels["le"]
			if le == "" {
				t.Fatalf("%s: bucket without le label: %v", name, s.labels)
			}
			if le == "+Inf" {
				haveInf = true
				buckets = append(buckets, bkt{math.Inf(1), s.value})
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: unparseable le %q", name, le)
			}
			buckets = append(buckets, bkt{f, s.value})
		case name + "_sum":
			if !match(s) {
				continue
			}
			sum, haveSum = s.value, true
		case name + "_count":
			if !match(s) {
				continue
			}
			count, haveCount = s.value, true
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("%s%v: no buckets found", name, want)
	}
	if !haveInf {
		t.Fatalf("%s%v: no +Inf bucket", name, want)
	}
	if !haveSum || !haveCount {
		t.Fatalf("%s%v: missing _sum or _count", name, want)
	}
	if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le }) {
		t.Fatalf("%s%v: le bounds not sorted: %v", name, want, buckets)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Fatalf("%s%v: buckets not cumulative at le=%v: %v < %v",
				name, want, buckets[i].le, buckets[i].cum, buckets[i-1].cum)
		}
	}
	if inf := buckets[len(buckets)-1].cum; inf != count {
		t.Fatalf("%s%v: +Inf bucket %v != _count %v", name, want, inf, count)
	}
	if count > 0 && sum < 0 {
		t.Fatalf("%s%v: negative sum %v with %v observations", name, want, sum, count)
	}
}

// TestWriteMetricsExposition round-trips WriteMetrics output through a
// strict text-exposition parser after real traffic (including a cascade
// model, so every stage series has observations) and checks the
// histogram contract on every family plus the presence and labeling of
// the observability additions: the stage-clock family, the queue-wait
// histogram, and the build-info gauge.
func TestWriteMetricsExposition(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	if err := pred.SetCascade(core.Cascade{DPrefix: 512, Margin: 8}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.PredictBatch(context.Background(), ds.Graphs); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteMetrics(&sb, e.Metrics(), e.Predictor()); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, name := range []string{
		"graphhd_requests_total", "graphhd_graphs_processed_total",
		"graphhd_model_dimension", "graphhd_kernel_info",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("missing metric %s", name)
		}
	}

	bi := byName["graphhd_build_info"]
	if len(bi) != 1 {
		t.Fatalf("graphhd_build_info: want 1 sample, got %d", len(bi))
	}
	if bi[0].value != 1 {
		t.Errorf("graphhd_build_info value = %v, want 1", bi[0].value)
	}
	if gv := bi[0].labels["go_version"]; gv == "" || !strings.HasPrefix(gv, "go") {
		t.Errorf("graphhd_build_info go_version = %q, want go toolchain version", gv)
	}
	if _, ok := bi[0].labels["vcs_revision"]; !ok {
		t.Errorf("graphhd_build_info missing vcs_revision label")
	}

	checkHistogram(t, samples, "graphhd_request_latency_seconds", nil)
	checkHistogram(t, samples, "graphhd_batch_size", nil)
	checkHistogram(t, samples, "graphhd_queue_wait_seconds", nil)
	for _, stage := range []string{"plan", "encode", "classify", "escalate"} {
		checkHistogram(t, samples, "graphhd_stage_seconds", map[string]string{"stage": stage})
	}

	// The batch ran through the engine, so the mandatory stage series
	// must have counted it; queue wait is observed per task.
	for _, stage := range []string{"plan", "encode", "classify"} {
		var n float64
		for _, s := range byName["graphhd_stage_seconds_count"] {
			if s.labels["stage"] == stage {
				n = s.value
			}
		}
		if n == 0 {
			t.Errorf("graphhd_stage_seconds_count{stage=%q} = 0 after traffic", stage)
		}
	}
}

// TestWriteRouterMetricsExposition round-trips the multi-model exposition
// through the same strict parser: two models × two replicas plus a quota
// rejection, checking the registry/tenant families, the {model,replica}
// labeling of every engine counter and histogram, the per-model gauges,
// and the family-major contiguity the parser enforces.
func TestWriteRouterMetricsExposition(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 2)
	reg := NewRegistry(RegistryOptions{
		Replicas: 2,
		Engine:   Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond},
	})
	defer reg.Close()
	if err := reg.Load("alpha", predA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("beta", predB); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{DefaultModel: "alpha", TenantQuota: 8})
	ctx := context.Background()
	if _, err := rt.PredictBatch(ctx, "t1", "alpha", ds.Graphs[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.PredictBatch(ctx, "t1", "beta", ds.Graphs[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.PredictBatch(ctx, "greedy", "alpha", ds.Graphs[:9]); err == nil {
		t.Fatal("over-quota batch was admitted")
	}

	var sb strings.Builder
	if err := WriteRouterMetrics(&sb, rt); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())

	find := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.value, true
			}
		}
		return 0, false
	}

	if v, ok := find("graphhd_models_resident", nil); !ok || v != 2 {
		t.Errorf("graphhd_models_resident = %v (found %v), want 2", v, ok)
	}
	if v, ok := find("graphhd_registry_bytes", nil); !ok || v != float64(predA.MemoryBytes()+predB.MemoryBytes()) {
		t.Errorf("graphhd_registry_bytes = %v (found %v)", v, ok)
	}
	if _, ok := find("graphhd_registry_evictions_total", nil); !ok {
		t.Error("graphhd_registry_evictions_total missing")
	}
	if v, ok := find("graphhd_quota_rejected_total", map[string]string{"tenant": "greedy"}); !ok || v != 1 {
		t.Errorf(`graphhd_quota_rejected_total{tenant="greedy"} = %v (found %v), want 1`, v, ok)
	}
	if v, ok := find("graphhd_quota_rejected_total", map[string]string{"tenant": "t1"}); !ok || v != 0 {
		t.Errorf(`graphhd_quota_rejected_total{tenant="t1"} = %v (found %v), want 0`, v, ok)
	}
	if v, ok := find("graphhd_tenant_inflight_graphs", map[string]string{"tenant": "t1"}); !ok || v != 0 {
		t.Errorf(`graphhd_tenant_inflight_graphs{tenant="t1"} = %v (found %v), want 0`, v, ok)
	}

	// Every (model, replica) slot carries the full engine counter set, and
	// the per-model accepted totals equal the routed traffic.
	for _, model := range []string{"alpha", "beta"} {
		var accepted float64
		for _, rep := range []string{"0", "1"} {
			labels := map[string]string{"model": model, "replica": rep}
			v, ok := find("graphhd_graphs_accepted_total", labels)
			if !ok {
				t.Fatalf("graphhd_graphs_accepted_total missing for %v", labels)
			}
			accepted += v
			if _, ok := find("graphhd_queue_depth", labels); !ok {
				t.Errorf("graphhd_queue_depth missing for %v", labels)
			}
			checkHistogram(t, samples, "graphhd_request_latency_seconds", labels)
			checkHistogram(t, samples, "graphhd_queue_wait_seconds", labels)
			for _, stage := range []string{"plan", "encode", "classify", "escalate"} {
				sl := map[string]string{"model": model, "replica": rep, "stage": stage}
				checkHistogram(t, samples, "graphhd_stage_seconds", sl)
			}
		}
		want := 8.0
		if model == "beta" {
			want = 4
		}
		if accepted != want {
			t.Errorf("model %s accepted %v graphs across replicas, want %v", model, accepted, want)
		}
	}

	// Per-model gauges carry the model label only.
	if v, ok := find("graphhd_model_dimension", map[string]string{"model": "beta"}); !ok || v != 1024 {
		t.Errorf(`graphhd_model_dimension{model="beta"} = %v (found %v), want 1024`, v, ok)
	}
	if v, ok := find("graphhd_model_version", map[string]string{"model": "alpha"}); !ok || v != 1 {
		t.Errorf(`graphhd_model_version{model="alpha"} = %v (found %v), want 1`, v, ok)
	}
	if _, ok := find("graphhd_kernel_info", nil); !ok {
		t.Error("graphhd_kernel_info missing from router exposition")
	}
}

// TestWriteRouterMetricsTrainerFamilies round-trips the online-learning
// families through the strict parser with a trainer attached: the
// feedback/trainer/shadow counters, the revision gauges, and the shadow
// latency histogram must all render family-major with {model} labels —
// and none of them may appear when no trainer exists (a declared family
// with zero series violates the exposition contract, which is exactly
// what the trainer-less TestWriteRouterMetricsExposition above pins).
func TestWriteRouterMetricsTrainerFamilies(t *testing.T) {
	m, ds := trainableModel(t, 1024, false)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 1}})
	defer reg.Close()
	if err := reg.Load("alpha", m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{DefaultModel: "alpha"})
	tr, err := reg.AttachTrainer("alpha", m, TrainerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tr.Feed(ds.Graphs[i], ds.Labels[i]); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := WriteRouterMetrics(&sb, rt); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, name := range []string{
		"graphhd_feedback_ingested_total", "graphhd_feedback_dropped_total",
		"graphhd_trainer_updates_total", "graphhd_trainer_snapshots_total",
		"graphhd_trainer_promotions_total", "graphhd_trainer_rollbacks_total",
		"graphhd_shadow_mirrored_total", "graphhd_shadow_agreed_total",
		"graphhd_shadow_disagreed_total", "graphhd_shadow_dropped_total",
		"graphhd_trainer_buffer_len", "graphhd_trainer_model_revision",
		"graphhd_model_revision",
	} {
		ss := byName[name]
		if len(ss) == 0 {
			t.Errorf("missing trainer family %s", name)
			continue
		}
		if ss[0].labels["model"] != "alpha" {
			t.Errorf("%s labels = %v, want model=\"alpha\"", name, ss[0].labels)
		}
	}
	checkHistogram(t, samples, "graphhd_shadow_latency_seconds", map[string]string{"model": "alpha"})

	got := 0.0
	for _, s := range byName["graphhd_feedback_ingested_total"] {
		got = s.value
	}
	if got != 4 {
		t.Errorf("graphhd_feedback_ingested_total = %v, want 4", got)
	}
}

// TestHistogramBucketBranchFree cross-checks the unrolled 16-bound
// bucket search against a straightforward linear scan, including the
// v == bound edge (bounds are inclusive upper limits: v lands in the
// bucket whose bound equals v) and both tails.
func TestHistogramBucketBranchFree(t *testing.T) {
	var h histogram
	h.init(powerBounds(250e-9, 16))
	if h.b16 == nil {
		t.Fatal("16-bound histogram did not take the unrolled path")
	}
	ref := func(v float64) int {
		i := 0
		for i < len(h.bounds) && v > h.bounds[i] {
			i++
		}
		return i
	}
	var vals []float64
	vals = append(vals, 0, -1, 1e-12, 1, math.Inf(1))
	for _, b := range h.bounds {
		vals = append(vals, b, math.Nextafter(b, 0), math.Nextafter(b, math.Inf(1)))
	}
	for _, v := range vals {
		if got, want := h.bucket(v), ref(v); got != want {
			t.Errorf("bucket(%g) = %d, want %d", v, got, want)
		}
	}

	// And a non-16-bound histogram must fall back to the loop with the
	// same semantics.
	var h5 histogram
	h5.init([]float64{1, 2, 4, 8, 16})
	for v, want := range map[float64]int{0.5: 0, 1: 0, 1.5: 1, 16: 4, 17: 5} {
		if got := h5.bucket(v); got != want {
			t.Errorf("5-bound bucket(%g) = %d, want %d", v, got, want)
		}
	}
}

// TestHistogramObserveSum drives concurrent observes and checks the
// CAS-accumulated sum and total count stay exact (the sum previously
// used a racy read-modify-write).
func TestHistogramObserveSum(t *testing.T) {
	var h histogram
	h.init(powerBounds(1, 16))
	const workers, per = 8, 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.observe(2.0)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	s := h.snapshot()
	if want := uint64(workers * per); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	if want := float64(workers*per) * 2.0; s.Sum != want {
		t.Fatalf("sum = %v, want %v (lost updates)", s.Sum, want)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestHistogramQuantile checks the interpolation estimator on a known
// distribution and its edge cases (empty, +Inf bucket).
func TestHistogramQuantile(t *testing.T) {
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}

	// 100 observations uniform in (0, 10]: bounds 10/20/40, all in the
	// first bucket. Median interpolates to the bucket midpoint.
	s := HistogramSnapshot{
		Bounds: []float64{10, 20, 40},
		Counts: []uint64{100, 0, 0, 0},
		Count:  100,
		Sum:    500,
	}
	if q := s.Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Errorf("median = %v, want 5", q)
	}
	if q := s.Quantile(1); math.Abs(q-10) > 1e-9 {
		t.Errorf("p100 = %v, want 10", q)
	}

	// Observations beyond the last bound land in +Inf; quantiles there
	// clamp to the highest finite bound rather than inventing a value.
	inf := HistogramSnapshot{
		Bounds: []float64{10, 20},
		Counts: []uint64{0, 0, 50},
		Count:  50,
	}
	if q := inf.Quantile(0.99); q != 20 {
		t.Errorf("+Inf-bucket quantile = %v, want 20", q)
	}

	// Split across two buckets: 50 in (0,10], 50 in (10,20] — p75 is
	// the midpoint of the second bucket.
	split := HistogramSnapshot{
		Bounds: []float64{10, 20},
		Counts: []uint64{50, 50, 0},
		Count:  100,
	}
	if q := split.Quantile(0.75); math.Abs(q-15) > 1e-9 {
		t.Errorf("p75 = %v, want 15", q)
	}
}

// TestQuantileMatchesObservations sanity-checks Quantile against a live
// histogram fed a known ramp.
func TestQuantileMatchesObservations(t *testing.T) {
	var h histogram
	h.init(powerBounds(1, 16))
	for i := 1; i <= 1000; i++ {
		h.observe(float64(i) / 100) // 0.01 .. 10
	}
	med := h.snapshot().Quantile(0.5)
	if med < 2 || med > 8 {
		t.Fatalf("median of ramp = %v, want within (2, 8)", med)
	}
}

func ExampleWriteMetrics() {
	var m Metrics
	m.Latency = HistogramSnapshot{Bounds: []float64{0.001}, Counts: []uint64{1, 0}, Count: 1, Sum: 0.0005}
	var sb strings.Builder
	_ = WriteMetrics(&sb, m, nil)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "graphhd_request_latency_seconds_bucket") {
			fmt.Println(line)
		}
	}
	// Output:
	// graphhd_request_latency_seconds_bucket{le="0.001"} 1
	// graphhd_request_latency_seconds_bucket{le="+Inf"} 1
}
