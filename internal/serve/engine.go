// Package serve is the online-inference subsystem. It is layered:
//
//	Registry (named models, LRU by packed bytes, rolling hot-swap)
//	  └─ Router (per-tenant quotas, least-in-flight replica placement)
//	       └─ N replica Engines per model (micro-batching, admission)
//
// The transport-agnostic Engine turns an immutable core.Predictor into a
// long-running, hot-swappable service. The Engine owns the three serving
// concerns the batch pipeline has no notion of:
//
//   - Micro-batching. Requests land in a bounded queue; a dispatcher
//     groups them into batches, flushing on MaxBatch, on MaxDelay, or
//     immediately when the queue drains while a worker is free — so a
//     fixed pool of workers stays hot under load while a lone request
//     pays no batching delay at all.
//   - Hot model swap. The predictor sits behind an atomic pointer; Swap
//     installs a new one with zero downtime and zero failed in-flight
//     requests. Workers notice the swap between dispatched batches and
//     re-bind their encoder scratch, so every response — and every batch,
//     which is encoded through one shared operand plan — is computed
//     coherently under exactly one model.
//   - Admission control. The queue is bounded; when it is full, Predict
//     and PredictBatch fail fast with ErrOverloaded instead of letting
//     latency collapse (the HTTP front end maps this to 429).
//
// The hot path is allocation-free in steady state: request and batch
// carriers are pooled, each worker owns one core.EncoderScratch for the
// lifetime of the current model, and results travel through pre-sized
// buffers. The only per-request allocations a front end pays are its own
// (e.g. JSON decode). cmd/graphhd-serve is the HTTP front end.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// Errors returned by the admission path.
var (
	// ErrOverloaded means the bounded request queue could not accept the
	// request; the caller should shed load (HTTP 429) or retry later.
	ErrOverloaded = errors.New("serve: queue full")
	// ErrClosed means the engine has been shut down.
	ErrClosed = errors.New("serve: engine closed")
)

// Options configures an Engine. The zero value of any field selects its
// default.
type Options struct {
	// Workers is the number of inference goroutines, each owning one
	// EncoderScratch for the lifetime of the current model. Non-positive
	// means GOMAXPROCS.
	Workers int
	// MaxBatch is the micro-batch flush size. Default 64.
	MaxBatch int
	// MaxDelay bounds how long the dispatcher lets a partial batch grow
	// when every worker is busy (with a worker free, partial batches flush
	// immediately). Default 200µs.
	MaxDelay time.Duration
	// QueueSize bounds the admission queue (in graphs, across single and
	// batch requests). Requests beyond it fail with ErrOverloaded.
	// Default 4096.
	QueueSize int
	// ModelName and Replica identify this engine's slot in a multi-model
	// deployment: the Registry stamps them so metrics and trace records
	// name the model and replica that served each batch. A standalone
	// engine defaults to model "default", replica 0.
	ModelName string
	Replica   int
	// TraceDepth is the flight-recorder capacity in per-batch trace
	// records, rounded up to a power of two. Non-positive selects
	// DefaultTraceDepth. Memory is fixed at roughly 160 bytes per record.
	TraceDepth int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 200 * time.Microsecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4096
	}
	if o.ModelName == "" {
		o.ModelName = "default"
	}
	return o
}

// task is one unit of queued work: a single graph (g) or a whole
// contiguous segment of a batch call (graphs, with out aligned index for
// index). Batch calls enqueue one task per MaxBatch-sized segment instead
// of one per graph, so admission and dispatch touch the queue O(n/MaxBatch)
// times per call. Tasks are pooled; a worker recycles the task as soon as
// its results are written, then signals the owning call.
type task struct {
	g      *graph.Graph   // single-request graph; nil for batch segments
	graphs []*graph.Graph // batch-call segment; nil for single requests
	out    []int
	idx    int
	call   *call
	enq    int64 // engine-monotonic nanos at queue enter (stage clock)
}

// size returns the number of graphs the task carries.
func (t *task) size() int {
	if t.graphs != nil {
		return len(t.graphs)
	}
	return 1
}

// call is the completion state shared by every task of one Predict or
// PredictBatch invocation. Calls are pooled; done is created once and
// reused (capacity 1, exactly one send per use by the final decrementer).
type call struct {
	pending atomic.Int32
	done    chan struct{}
	res     [1]int // result storage for single-graph calls
}

var (
	taskPool = sync.Pool{New: func() any { return new(task) }}
	callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}
)

// batch is the dispatcher→worker unit of work. size counts graphs across
// all tasks (batch-segment tasks carry several). open and qmax feed the
// stage clock: when the dispatcher opened the batch, and the longest
// queue wait among its tasks. Pooled.
type batch struct {
	tasks []*task
	size  int
	open  int64
	qmax  int64
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

// Engine serves predictions from a hot-swappable packed predictor. Create
// one with NewEngine; it is safe for concurrent use by any number of
// request goroutines.
type Engine struct {
	opts Options
	pred atomic.Pointer[core.Predictor]

	queue   chan *task
	batches chan *batch
	depth   atomic.Int64 // graphs admitted but not yet picked up by the dispatcher

	mu     sync.RWMutex // guards queue sends against Close
	closed bool
	wg     sync.WaitGroup

	m metrics

	// Stage clock + flight recorder: epoch is the engine's monotonic time
	// base (all task/batch stamps are nanos since it), rec retains the
	// last TraceDepth per-batch trace records.
	epoch time.Time
	rec   *flightRecorder
}

// nanos is the engine's monotonic stage clock: nanoseconds since the
// engine was built (time.Since reads the monotonic clock).
func (e *Engine) nanos() int64 { return int64(time.Since(e.epoch)) }

// NewEngine builds and starts an engine serving pred.
func NewEngine(pred *core.Predictor, opts Options) (*Engine, error) {
	e, err := newEngine(pred, opts)
	if err != nil {
		return nil, err
	}
	e.start()
	return e, nil
}

// newEngine builds an engine without starting its goroutines; tests use
// the split to exercise admission control deterministically.
func newEngine(pred *core.Predictor, opts Options) (*Engine, error) {
	if pred == nil {
		return nil, errors.New("serve: nil predictor")
	}
	opts = opts.withDefaults()
	e := &Engine{
		opts:  opts,
		queue: make(chan *task, opts.QueueSize),
		// batches is deliberately unbuffered: a non-blocking send succeeds
		// exactly when a worker is parked on the receive, which is what
		// lets the dispatcher flush partial batches the moment a worker is
		// genuinely free (buffering would dispatch singleton batches into
		// the buffer while every worker is busy, defeating MaxDelay).
		batches: make(chan *batch),
		epoch:   time.Now(),
		rec:     newFlightRecorder(opts.TraceDepth),
	}
	e.pred.Store(pred)
	e.m.init(opts.MaxBatch)
	return e, nil
}

func (e *Engine) start() {
	e.wg.Add(1 + e.opts.Workers)
	go e.dispatch()
	for i := 0; i < e.opts.Workers; i++ {
		go e.worker()
	}
}

// Predictor returns the currently installed model snapshot.
func (e *Engine) Predictor() *core.Predictor { return e.pred.Load() }

// Options returns the engine's resolved configuration.
func (e *Engine) Options() Options { return e.opts }

// Swap atomically installs a new predictor. In-flight requests finish
// under whichever model their worker loads; none fail. Workers re-bind
// their encoder scratch on the next batch they dispatch, so a swap to a
// model with a different dimension or configuration is safe.
func (e *Engine) Swap(pred *core.Predictor) error {
	if pred == nil {
		return errors.New("serve: swap to nil predictor")
	}
	e.pred.Store(pred)
	e.m.reloads.Add(1)
	return nil
}

// Predict classifies one graph through the micro-batching queue and
// returns its class under the model current at processing time. It fails
// fast with ErrOverloaded when the queue is full; once admitted, the
// request always completes (ctx governs admission, not processing, which
// is bounded by MaxDelay plus one batch of work).
func (e *Engine) Predict(ctx context.Context, g *graph.Graph) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	t0 := time.Now()
	c := callPool.Get().(*call)
	c.pending.Store(1)
	t := taskPool.Get().(*task)
	t.g, t.out, t.idx, t.call = g, c.res[:], 0, c

	if err := e.enqueue(t); err != nil {
		t.g, t.out, t.call = nil, nil, nil
		taskPool.Put(t)
		callPool.Put(c)
		return 0, err
	}
	<-c.done
	class := c.res[0]
	callPool.Put(c)
	e.m.observeRequest(time.Since(t0))
	return class, nil
}

// PredictBatch classifies graphs in order, returning one class per graph.
// The whole batch is admitted atomically: if the queue cannot take all of
// it, nothing is enqueued and ErrOverloaded is returned.
func (e *Engine) PredictBatch(ctx context.Context, graphs []*graph.Graph) ([]int, error) {
	out := make([]int, len(graphs))
	if err := e.PredictBatchInto(ctx, graphs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// (len(out) must equal len(graphs)), for callers that manage buffers.
func (e *Engine) PredictBatchInto(ctx context.Context, graphs []*graph.Graph, out []int) error {
	if len(out) != len(graphs) {
		return fmt.Errorf("serve: %d results for %d graphs", len(out), len(graphs))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(graphs)
	if n == 0 {
		return nil
	}
	if n > e.opts.QueueSize {
		e.m.rejected.Add(1)
		return fmt.Errorf("%w: batch of %d exceeds queue size %d", ErrOverloaded, n, e.opts.QueueSize)
	}
	t0 := time.Now()
	// The batch is enqueued as MaxBatch-sized contiguous segments, one
	// task each: workers encode a whole segment through one shared
	// cross-graph operand plan, and the queue is touched once per segment
	// instead of once per graph.
	segs := (n + e.opts.MaxBatch - 1) / e.opts.MaxBatch
	c := callPool.Get().(*call)
	c.pending.Store(int32(segs))

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		callPool.Put(c)
		return ErrClosed
	}
	if !e.admit(int64(n)) {
		e.mu.RUnlock()
		callPool.Put(c)
		return ErrOverloaded
	}
	// Capacity is reserved: none of these sends can block.
	enq := e.nanos() // segments enter the queue together; stamp once
	for lo := 0; lo < n; lo += e.opts.MaxBatch {
		hi := lo + e.opts.MaxBatch
		if hi > n {
			hi = n
		}
		t := taskPool.Get().(*task)
		t.graphs, t.out, t.idx, t.call, t.enq = graphs[lo:hi], out[lo:hi], 0, c, enq
		e.queue <- t
	}
	e.mu.RUnlock()

	<-c.done
	callPool.Put(c)
	e.m.observeRequest(time.Since(t0))
	return nil
}

// enqueue admits and queues a single task.
func (e *Engine) enqueue(t *task) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if !e.admit(1) {
		return ErrOverloaded
	}
	t.enq = e.nanos()
	e.queue <- t // cannot block: capacity reserved by admit
	return nil
}

// admit reserves n slots in the bounded queue, reporting false (and
// counting a rejection) when they are not available. Admitted graphs are
// counted the moment capacity is reserved, so
// accepted == processed + in-flight holds at every instant.
func (e *Engine) admit(n int64) bool {
	for {
		d := e.depth.Load()
		if d+n > int64(e.opts.QueueSize) {
			e.m.rejected.Add(1)
			return false
		}
		if e.depth.CompareAndSwap(d, d+n) {
			e.m.accepted.Add(uint64(n))
			return true
		}
	}
}

// dispatch is the micro-batcher: it pulls tasks off the queue and groups
// them into batches, flushing when a batch reaches MaxBatch, when the
// queue drains while a worker slot is free (a lone request pays no
// batching delay), or — with every worker busy — when MaxDelay has
// elapsed, the saturation regime where letting the batch grow is free.
// pickup moves a task from the queue into a forming batch, observing its
// queue wait (queue-enter to this instant) on the stage clock and
// tracking the batch's worst wait for the flight recorder.
func (e *Engine) pickup(b *batch, t *task) {
	e.depth.Add(-int64(t.size()))
	w := e.nanos() - t.enq
	e.m.queueWait.observe(float64(w) * 1e-9)
	if w > b.qmax {
		b.qmax = w
	}
	b.tasks = append(b.tasks, t)
	b.size += t.size()
}

func (e *Engine) dispatch() {
	defer e.wg.Done()
	defer close(e.batches)
	timer := time.NewTimer(e.opts.MaxDelay)
	timer.Stop() // Go 1.23+ timers: Stop/Reset need no channel draining
	for {
		t, ok := <-e.queue
		if !ok {
			return
		}
		b := batchPool.Get().(*batch)
		b.tasks = b.tasks[:0]
		b.size, b.qmax = 0, 0
		b.open = e.nanos()
		e.pickup(b, t)
		if !e.fill(b, timer) {
			return
		}
	}
}

// fill grows b until a flush condition holds, then hands it to a worker.
// It reports false when the queue has been closed (b is still flushed).
func (e *Engine) fill(b *batch, timer *time.Timer) bool {
	for {
		// Greedily take whatever is already queued, counting graphs (a
		// batch-segment task carries up to MaxBatch of them).
		for b.size < e.opts.MaxBatch {
			select {
			case t, ok := <-e.queue:
				if !ok {
					e.batches <- b
					return false
				}
				e.pickup(b, t)
				continue
			default:
			}
			break
		}
		if b.size >= e.opts.MaxBatch {
			e.batches <- b
			return true
		}
		// Queue drained below MaxBatch: flush now if a worker can take the
		// batch — waiting would add latency with nothing left to batch.
		select {
		case e.batches <- b:
			return true
		default:
		}
		// Every worker is busy: let the batch grow for up to MaxDelay.
		timer.Reset(e.opts.MaxDelay)
		select {
		case t, ok := <-e.queue:
			timer.Stop()
			if !ok {
				e.batches <- b
				return false
			}
			e.pickup(b, t)
		case <-timer.C:
			e.batches <- b
			return true
		}
	}
}

// worker is one inference goroutine. It owns a single core.BatchScratch,
// re-vended only when a hot swap installs a model with a different
// encoder, and encodes every dispatched batch — singles and batch-call
// segments alike — through one shared cross-graph operand plan
// (Predictor.PredictBatchWith): distinct rank pairs are materialized once
// per dispatched batch, not once per graph. The predictor is loaded once
// per dispatched batch, so all of a batch's responses are computed
// coherently under exactly one model; a concurrent Swap takes effect at
// the next batch boundary. Steady state allocates nothing: the scratch's
// plan and grouping buffers plus the worker's gather/result buffers
// amortize across the worker's lifetime.
func (e *Engine) worker() {
	defer e.wg.Done()
	var enc *core.Encoder
	var scratch *core.BatchScratch
	var gbuf []*graph.Graph
	var rbuf []int
	var rec TraceRecord // reused carrier; the recorder copies it out
	for b := range e.batches {
		start := e.nanos()
		e.m.observeBatch(b.size)
		p := e.pred.Load()
		if pe := p.Encoder(); pe != enc {
			enc = pe
			scratch = enc.NewBatchScratch()
		}
		gbuf = gbuf[:0]
		for _, t := range b.tasks {
			if t.graphs != nil {
				gbuf = append(gbuf, t.graphs...)
			} else {
				gbuf = append(gbuf, t.g)
			}
		}
		if cap(rbuf) < len(gbuf) {
			rbuf = make([]int, len(gbuf))
		}
		rbuf = rbuf[:len(gbuf)]
		var tr core.BatchTrace
		var stage1, escalated int
		_, cascading := p.Cascade()
		if cascading {
			// Two-stage path: the whole batch encodes once at prefix
			// width; only ambiguous graphs pay full dimension.
			stage1, escalated = p.PredictBatchCascadeTraced(scratch, gbuf, rbuf, &tr)
			e.m.observeCascade(stage1, escalated)
		} else {
			p.PredictBatchTraced(scratch, gbuf, rbuf, &tr)
		}
		e.m.observeStages(&tr, cascading)
		pairs, distinct := scratch.PlanStats()
		e.m.observePlan(pairs, distinct)
		rec = TraceRecord{
			Time:           e.epoch.Add(time.Duration(start)),
			Model:          e.opts.ModelName,
			Replica:        e.opts.Replica,
			BatchSize:      b.size,
			Tasks:          len(b.tasks),
			QueueWaitNanos: b.qmax,
			DispatchNanos:  start - b.open,
			PlanNanos:      tr.PlanNanos,
			EncodeNanos:    tr.EncodeNanos,
			ClassifyNanos:  tr.ClassifyNanos,
			EscalateNanos:  tr.EscalateNanos,
			TotalNanos:     e.nanos() - start,
			PlanPairs:      pairs,
			PlanDistinct:   distinct,
			Cascade:        cascading,
			Stage1:         stage1,
			Escalated:      escalated,
			ModelReloads:   e.m.reloads.Load(),
			Kernel:         hdc.ActiveKernel().String(),
		}
		e.rec.record(&rec)
		j := 0
		for _, t := range b.tasks {
			if t.graphs != nil {
				j += copy(t.out, rbuf[j:j+len(t.graphs)])
			} else {
				t.out[t.idx] = rbuf[j]
				j++
			}
			e.m.processed.Add(uint64(t.size()))
			c := t.call
			t.g, t.graphs, t.out, t.call = nil, nil, nil, nil
			taskPool.Put(t)
			// The atomic decrement orders every worker's result write
			// before the final signal; after the send the caller owns c.
			if c.pending.Add(-1) == 0 {
				c.done <- struct{}{}
			}
		}
		clear(gbuf)
		clear(b.tasks)
		b.tasks = b.tasks[:0]
		b.size = 0
		batchPool.Put(b)
	}
}

// Close drains the queue, completes every admitted request, and stops the
// dispatcher and workers. Requests arriving after Close fail with
// ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	e.wg.Wait()
}
