package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphhd/internal/core"
)

// TestEngineSoakMixedLoad is the serving soak test: sustained mixed
// single/batch load from many clients, concurrent hot swaps between
// models of different dimensions, and induced overload through a small
// queue — the regime where admission accounting, batch segmentation, and
// worker scratch re-binding all interleave. It asserts the accounting the
// metrics promise:
//
//	accepted == processed with zero in-flight at quiesce, and
//	in-flight bounded by the engine's physical capacity under load,
//
// plus client-side bookkeeping (every admitted graph got exactly one
// valid answer, every refused call got ErrOverloaded, nothing else ever
// failed across swaps). Run under -race in CI, where it doubles as the
// concurrency audit of the batch-encoding worker path.
func TestEngineSoakMixedLoad(t *testing.T) {
	predA, ds := testModel(t, 1024, 1)
	predB, _ := testModel(t, 512, 99) // different dimension: swaps re-bind scratches
	// predA serves through the two-stage cascade, predB single-stage, so
	// the fleet's traffic mixes prefix-width and full-width batches across
	// scratch re-binds — the mixed-width cascade leg of the -race audit.
	if err := predA.SetCascade(core.Cascade{DPrefix: 256, Margin: 12}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(predA, Options{
		Workers:  4,
		MaxBatch: 8,
		MaxDelay: 50 * time.Microsecond,
		// Small enough that the client fleet overruns it regularly.
		QueueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	duration := 800 * time.Millisecond
	if testing.Short() {
		duration = 150 * time.Millisecond
	}
	deadline := time.After(duration)
	stop := make(chan struct{})
	go func() {
		<-deadline
		close(stop)
	}()

	// Swapper: flip between the two models as fast as the scheduler allows.
	var swaps atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := predA
			if i%2 == 1 {
				next = predB
			}
			if err := e.Swap(next); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			swaps.Add(1)
			// Throttle: a spinning swapper would monopolize a core without
			// adding coverage; thousands of swaps per soak are plenty.
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var graphsOK, callsOK, callsRejected atomic.Uint64
	var failures atomic.Uint64
	ctx := context.Background()
	classValid := func(c int) bool {
		// Classes must come from whichever model answered; both are
		// two-class MUTAG models here, but guard generically.
		return c >= 0 && (c < predA.NumClasses() || c < predB.NumClasses())
	}

	client := func(batch int) {
		defer wg.Done()
		i := 0
		out := make([]int, batch)
		// Repeat the dataset so batches larger than it (including the
		// always-rejected one above QueueSize) can be formed.
		pool := ds.Graphs
		for len(pool) < batch+len(ds.Graphs) {
			pool = append(pool, ds.Graphs...)
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if batch == 1 {
				class, err := e.Predict(ctx, ds.Graphs[i%len(ds.Graphs)])
				switch {
				case err == nil:
					if !classValid(class) {
						t.Errorf("invalid class %d", class)
					}
					graphsOK.Add(1)
					callsOK.Add(1)
				case errors.Is(err, ErrOverloaded):
					callsRejected.Add(1)
				default:
					failures.Add(1)
					t.Errorf("predict failed: %v", err)
				}
			} else {
				lo := i % len(ds.Graphs)
				graphs := pool[lo : lo+batch]
				err := e.PredictBatchInto(ctx, graphs, out[:batch])
				switch {
				case err == nil:
					for _, c := range out[:batch] {
						if !classValid(c) {
							t.Errorf("invalid class %d", c)
						}
					}
					graphsOK.Add(uint64(batch))
					callsOK.Add(1)
				case errors.Is(err, ErrOverloaded):
					callsRejected.Add(1)
				default:
					failures.Add(1)
					t.Errorf("predict batch failed: %v", err)
				}
			}
			i++
			// Spot-check in-flight occupancy under load against the
			// engine's physical capacity: the queue holds at most
			// QueueSize graphs, the dispatcher's forming batch and each
			// worker's dispatched batch at most 2·MaxBatch-1 each (one
			// oversized segment task can land on a batch just under
			// MaxBatch). InFlight = accepted - processed by definition,
			// so this bound is what actually catches a lost
			// processed-increment or a double-counted admission — the
			// identity itself cannot fail.
			if i%64 == 0 {
				m := e.Metrics()
				opts := e.Options()
				limit := uint64(opts.QueueSize + (opts.Workers+1)*(2*opts.MaxBatch))
				if m.InFlight > limit {
					t.Errorf("in-flight graphs %d exceed engine capacity %d (accepted %d, processed %d)",
						m.InFlight, limit, m.AcceptedGraphs, m.Processed)
				}
			}
		}
	}

	// Mixed fleet: single-predict clients plus batch clients of several
	// sizes, including batches larger than MaxBatch (segmented), larger
	// than the queue can sometimes absorb, and one — 65 against a queue of
	// 64 — that admission control must refuse every time.
	for _, batch := range []int{1, 1, 1, 1, 3, 8, 17, 32, 65} {
		wg.Add(1)
		go client(batch)
	}
	wg.Wait()
	e.Close() // drains every admitted request

	m := e.Metrics()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed in flight across %d swaps", failures.Load(), swaps.Load())
	}
	if m.AcceptedGraphs != m.Processed || m.InFlight != 0 || m.QueueDepth != 0 {
		t.Fatalf("engine did not quiesce clean: accepted %d, processed %d, inflight %d, depth %d",
			m.AcceptedGraphs, m.Processed, m.InFlight, m.QueueDepth)
	}
	if m.AcceptedGraphs != graphsOK.Load() {
		t.Fatalf("accepted %d graphs but clients saw %d answered", m.AcceptedGraphs, graphsOK.Load())
	}
	if m.Requests != callsOK.Load() {
		t.Fatalf("requests %d but clients completed %d calls", m.Requests, callsOK.Load())
	}
	if m.Rejected != callsRejected.Load() {
		t.Fatalf("rejected %d but clients saw %d overloads", m.Rejected, callsRejected.Load())
	}
	if callsRejected.Load() == 0 {
		t.Fatal("overload was never induced")
	}
	if swaps.Load() == 0 {
		t.Fatal("no hot swaps happened during the soak")
	}
	if m.PlanPairs == 0 || m.PlanDistinct == 0 || m.PlanDistinct > m.PlanPairs {
		t.Fatalf("plan metrics inconsistent: pairs %d, distinct %d", m.PlanPairs, m.PlanDistinct)
	}
	// The cascade model served part of the traffic; every cascade-counted
	// graph was also a processed graph.
	if m.CascadeStage1 == 0 {
		t.Fatal("cascade model never decided a graph at stage 1 during the soak")
	}
	if m.CascadeStage1+m.CascadeEscalated > m.Processed {
		t.Fatalf("cascade counters %d+%d exceed processed %d",
			m.CascadeStage1, m.CascadeEscalated, m.Processed)
	}
	t.Logf("soak: %d graphs over %d calls, %d rejected calls, %d swaps, plan dedup %.2fx, cascade %d/%d stage-1/escalated",
		m.Processed, m.Requests, m.Rejected, swaps.Load(),
		float64(m.PlanPairs)/float64(m.PlanDistinct),
		m.CascadeStage1, m.CascadeEscalated)
}
