package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/graph"
)

// testModel trains a small model on a synthetic dataset and snapshots it.
func testModel(t testing.TB, dim int, seed uint64) (*core.Predictor, *graph.Dataset) {
	t.Helper()
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	cfg.Dimension = dim
	cfg.Seed = seed
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), ds
}

// TestEnginePredictMatchesOffline is the end-to-end equivalence
// guarantee: classifications served through the micro-batching engine —
// one at a time and batched — are bit-identical to Predictor.PredictAll.
func TestEnginePredictMatchesOffline(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	want := pred.PredictAll(ds.Graphs)

	e, err := NewEngine(pred, Options{Workers: 4, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i, g := range ds.Graphs {
		got, err := e.Predict(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("graph %d: served class %d, offline class %d", i, got, want[i])
		}
	}
	got, err := e.PredictBatch(context.Background(), ds.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("batch graph %d: served class %d, offline class %d", i, got[i], want[i])
		}
	}
}

// TestEngineHotReloadUnderLoad hammers one engine from many goroutines
// while hot swaps alternate between two different models (different seeds
// AND different dimensions, so workers must re-bind their scratches).
// Every response must succeed and match what one of the two models would
// have predicted offline — no torn or failed request is tolerated.
func TestEngineHotReloadUnderLoad(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 99)
	wantA := predA.PredictAll(ds.Graphs)
	wantB := predB.PredictAll(ds.Graphs)

	e, err := NewEngine(predA, Options{Workers: 4, MaxBatch: 4, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const clients = 8
	const perClient = 60
	var failures atomic.Int64
	var swapWg, clientWg sync.WaitGroup
	stopSwap := make(chan struct{})
	swapWg.Add(1)
	go func() { // swapper: flip models as fast as the race detector allows
		defer swapWg.Done()
		cur := false
		for {
			select {
			case <-stopSwap:
				return
			default:
			}
			if cur {
				e.Swap(predA)
			} else {
				e.Swap(predB)
			}
			cur = !cur
			time.Sleep(100 * time.Microsecond)
		}
	}()
	clientWg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer clientWg.Done()
			for r := 0; r < perClient; r++ {
				i := (c*perClient + r) % len(ds.Graphs)
				got, err := e.Predict(context.Background(), ds.Graphs[i])
				if err != nil {
					t.Errorf("client %d: predict failed during hot reload: %v", c, err)
					failures.Add(1)
					return
				}
				if got != wantA[i] && got != wantB[i] {
					t.Errorf("graph %d: class %d matches neither model (A=%d, B=%d)",
						i, got, wantA[i], wantB[i])
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	// The swapper keeps flipping until every client finishes, so swaps
	// overlap the whole request stream.
	done := make(chan struct{})
	go func() { clientWg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hot-reload load test timed out")
	}
	close(stopSwap)
	swapWg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed or returned torn results during hot reload", failures.Load())
	}
	if e.Metrics().Reloads == 0 {
		t.Fatal("no reloads recorded")
	}
}

// TestEngineBackpressure fills the admission queue of an unstarted engine
// and checks that further requests are rejected with ErrOverloaded, then
// starts the engine and checks every admitted request completes.
func TestEngineBackpressure(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := newEngine(pred, Options{Workers: 2, MaxBatch: 4, QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		class int
		err   error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			c, err := e.Predict(context.Background(), ds.Graphs[i])
			results <- res{c, err}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.depth.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 2", e.depth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if m := e.Metrics(); m.QueueDepth != 2 {
		t.Fatalf("metrics queue depth %d, want 2", m.QueueDepth)
	}

	if _, err := e.Predict(context.Background(), ds.Graphs[2]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull queue: got %v, want ErrOverloaded", err)
	}
	if err := e.PredictBatchInto(context.Background(), ds.Graphs[:1], make([]int, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull queue (batch): got %v, want ErrOverloaded", err)
	}
	if m := e.Metrics(); m.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", m.Rejected)
	}

	e.start()
	want := pred.PredictAll(ds.Graphs[:2])
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.class != want[0] && r.class != want[1] {
			t.Fatalf("drained class %d matches neither expected prediction %v", r.class, want)
		}
	}
	e.Close()
}

// TestEngineBatchAdmissionIsAtomic: a batch larger than the queue can
// never be admitted, and a rejected batch must not leave partial tasks
// behind.
func TestEngineBatchAdmissionIsAtomic(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := NewEngine(pred, Options{Workers: 1, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.PredictBatch(context.Background(), ds.Graphs[:5]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch: got %v, want ErrOverloaded", err)
	}
	if d := e.Metrics().QueueDepth; d != 0 {
		t.Fatalf("rejected batch left queue depth %d", d)
	}
	// A batch exactly at the bound is fine.
	got, err := e.PredictBatch(context.Background(), ds.Graphs[:4])
	if err != nil {
		t.Fatal(err)
	}
	want := pred.PredictAll(ds.Graphs[:4])
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("graph %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestEngineCloseRejectsNewRequests(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := NewEngine(pred, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Predict(context.Background(), ds.Graphs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: got %v, want ErrClosed", err)
	}
	if _, err := e.PredictBatch(context.Background(), ds.Graphs[:2]); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close (batch): got %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestEngineArgumentErrors(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Fatal("nil predictor accepted")
	}
	e, err := NewEngine(pred, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if err := e.PredictBatchInto(context.Background(), ds.Graphs[:2], make([]int, 1)); err == nil {
		t.Fatal("mismatched out length accepted")
	}
	if err := e.PredictBatchInto(context.Background(), nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Predict(ctx, ds.Graphs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v", err)
	}
}

// TestEngineMetrics drives known traffic through the engine and checks
// the snapshot arithmetic and the Prometheus rendering.
func TestEngineMetrics(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if _, err := e.Predict(context.Background(), ds.Graphs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PredictBatch(context.Background(), ds.Graphs[:10]); err != nil {
		t.Fatal(err)
	}

	m := e.Metrics()
	if m.Requests != 2 {
		t.Fatalf("requests %d, want 2", m.Requests)
	}
	if m.Processed != 11 {
		t.Fatalf("processed %d, want 11", m.Processed)
	}
	if m.Latency.Count != 2 || m.Latency.Sum <= 0 {
		t.Fatalf("latency histogram count=%d sum=%g, want 2 observations with positive sum",
			m.Latency.Count, m.Latency.Sum)
	}
	var batched uint64
	for i, c := range m.BatchSize.Counts {
		_ = i
		batched += c
	}
	if batched == 0 {
		t.Fatal("no batches observed")
	}

	var sb strings.Builder
	if err := WriteMetrics(&sb, m, e.Predictor()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"graphhd_requests_total 2",
		"graphhd_graphs_processed_total 11",
		"graphhd_queue_depth",
		"graphhd_request_latency_seconds_bucket{le=\"+Inf\"} 2",
		"graphhd_request_latency_seconds_count 2",
		"graphhd_batch_size_bucket",
		"graphhd_model_classes 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestServePredictAllocationFree is the acceptance bound: once warmed up,
// the engine + worker path adds zero heap allocations per request on top
// of whatever the front end pays to decode the request.
func TestServePredictAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	pred, ds := testModel(t, 2048, 1)
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g := ds.Graphs[0]
	ctx := context.Background()
	for i := 0; i < 50; i++ { // warm pools, scratches, histogram ranges
		if _, err := e.Predict(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Predict(ctx, g); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("Engine.Predict allocated %v times per run, want 0", allocs)
	}
}
