package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphhd/internal/core"
)

// TestEngineCascadeMatchesOffline checks the served two-stage path end to
// end: classes served through the engine match the offline cascade
// primitive, and the stage-1/escalation counters account for every graph.
func TestEngineCascadeMatchesOffline(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	if err := pred.SetCascade(core.Cascade{DPrefix: 256, Margin: 10}); err != nil {
		t.Fatal(err)
	}
	// Offline reference through the per-graph cascade primitive.
	s := pred.Encoder().NewScratch()
	want := make([]int, len(ds.Graphs))
	for i, g := range ds.Graphs {
		want[i], _ = pred.PredictCascadeWith(s, g)
	}

	e, err := NewEngine(pred, Options{Workers: 4, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i, g := range ds.Graphs {
		got, err := e.Predict(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("served cascade class %d for graph %d, offline %d", got, i, want[i])
		}
	}
	batched, err := e.PredictBatch(context.Background(), ds.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batched {
		if batched[i] != want[i] {
			t.Fatalf("served batch cascade class %d for graph %d, offline %d", batched[i], i, want[i])
		}
	}

	m := e.Metrics()
	if got := m.CascadeStage1 + m.CascadeEscalated; got != m.Processed {
		t.Fatalf("cascade counters %d+%d do not cover %d processed graphs",
			m.CascadeStage1, m.CascadeEscalated, m.Processed)
	}
	if m.CascadeStage1 == 0 {
		t.Fatal("no graph was decided at stage 1")
	}
}

// TestHTTPCascadeSurfaces checks the operator surfaces: /v1/model carries
// the cascade config and /metrics exposes the stage-1/escalation counters
// and the model dimension gauge.
func TestHTTPCascadeSurfaces(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	casc := core.Cascade{DPrefix: 1000, Margin: 25}
	if err := pred.SetCascade(casc); err != nil {
		t.Fatal(err)
	}
	srv, e := startTestServer(t, pred, HandlerOptions{})
	if _, err := e.PredictBatch(context.Background(), ds.Graphs); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.CascadePrefix != casc.DPrefix || info.CascadeMargin != casc.Margin {
		t.Fatalf("model card cascade %d/%d, want %d/%d",
			info.CascadePrefix, info.CascadeMargin, casc.DPrefix, casc.Margin)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	m := e.Metrics()
	for _, line := range []string{
		fmt.Sprintf(`graphhd_cascade_stage1_total{model="default",replica="0"} %d`, m.CascadeStage1),
		fmt.Sprintf(`graphhd_cascade_escalated_total{model="default",replica="0"} %d`, m.CascadeEscalated),
		`graphhd_model_dimension{model="default"} 2048`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q in:\n%s", line, body)
		}
	}
}

// TestRegistryPrepareModel checks the artifact-load hook: operator
// cascade flags apply to every model the registry reads from disk — both
// the initial LoadFile and the Reload (SIGHUP / admin) path — and a hook
// error aborts the reload, leaving the current model serving.
func TestRegistryPrepareModel(t *testing.T) {
	pred, _ := testModel(t, 2048, 1)
	casc := core.Cascade{DPrefix: 512, Margin: 9}
	reg := NewRegistry(RegistryOptions{
		Engine: Options{Workers: 1},
		PrepareModel: func(name string, p *core.Predictor) error {
			if name != "default" {
				return fmt.Errorf("hook saw model %q", name)
			}
			return p.SetCascade(casc)
		},
	})
	defer reg.Close()

	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadFile("default", path); err != nil {
		t.Fatal(err)
	}
	serving, err := serveRegistryPredictor(reg, "default")
	if err != nil {
		t.Fatal(err)
	}
	got, on := serving.Cascade()
	if !on || got != casc {
		t.Fatalf("loaded model cascade = %+v (active %v), want %+v", got, on, casc)
	}

	// Reload re-reads the artifact and re-applies the hook.
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload("default"); err != nil {
		t.Fatal(err)
	}
	serving, err = serveRegistryPredictor(reg, "default")
	if err != nil {
		t.Fatal(err)
	}
	if got, on := serving.Cascade(); !on || got != casc {
		t.Fatalf("reloaded model cascade = %+v (active %v), want %+v", got, on, casc)
	}

	// A failing hook (here: prefix too wide for a narrower model) aborts
	// the reload without installing the new model.
	small, _ := testModel(t, 256, 5)
	if err := small.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := serveRegistryPredictor(reg, "default")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload("default"); err == nil {
		t.Fatal("reload with failing PrepareModel succeeded")
	}
	after, err := serveRegistryPredictor(reg, "default")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatal("failed reload replaced the serving model")
	}
}

// serveRegistryPredictor returns the predictor currently serving the
// named model's first replica.
func serveRegistryPredictor(reg *Registry, name string) (*core.Predictor, error) {
	m, ok := reg.model(name)
	if !ok {
		return nil, fmt.Errorf("model %q not resident", name)
	}
	return m.replicas[0].eng.Predictor(), nil
}
