package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRouterRoutesByName serves two models through one router and checks
// each name answers under its own model, the empty name selects the
// default, and unknown names surface ErrModelNotFound.
func TestRouterRoutesByName(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 99)
	wantA := predA.PredictAll(ds.Graphs)
	wantB := predB.PredictAll(ds.Graphs)

	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond}})
	defer reg.Close()
	if err := reg.Load("alpha", predA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("beta", predB); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{DefaultModel: "alpha"})
	ctx := context.Background()

	gotA, err := rt.PredictBatch(ctx, "", "alpha", ds.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := rt.PredictBatch(ctx, "", "beta", ds.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	gotDefault, err := rt.PredictBatch(ctx, "", "", ds.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Graphs {
		if gotA[i] != wantA[i] {
			t.Fatalf("alpha graph %d: class %d, want %d", i, gotA[i], wantA[i])
		}
		if gotB[i] != wantB[i] {
			t.Fatalf("beta graph %d: class %d, want %d", i, gotB[i], wantB[i])
		}
		if gotDefault[i] != wantA[i] {
			t.Fatalf("default graph %d: class %d, want alpha's %d", i, gotDefault[i], wantA[i])
		}
	}
	if c, err := rt.Predict(ctx, "", "beta", ds.Graphs[0]); err != nil || c != wantB[0] {
		t.Fatalf("single predict on beta: class %d err %v, want %d", c, err, wantB[0])
	}

	if _, err := rt.Predict(ctx, "", "gamma", ds.Graphs[0]); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("unknown model: %v, want ErrModelNotFound", err)
	}
	if _, err := rt.Predictor("gamma"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("Predictor of unknown model: %v, want ErrModelNotFound", err)
	}
	if p, err := rt.Predictor(""); err != nil || p != predA {
		t.Fatalf("default predictor: %v, %v", p, err)
	}
}

// TestRouterQuota checks tenant admission: an over-quota batch is
// rejected before any engine sees it, the rejection is accounted to the
// tenant, and other tenants are untouched.
func TestRouterQuota(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 1}})
	defer reg.Close()
	if err := reg.Load("default", pred); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{TenantQuota: 4})
	ctx := context.Background()

	if _, err := rt.PredictBatch(ctx, "noisy", "", ds.Graphs[:5]); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota batch: %v, want ErrQuotaExceeded", err)
	}
	m, _ := reg.model("default")
	if got := m.replicas[0].eng.Metrics().AcceptedGraphs; got != 0 {
		t.Fatalf("quota rejection reached the engine: %d graphs accepted", got)
	}

	// At quota is fine; sequential calls release their reservation.
	for i := 0; i < 3; i++ {
		if _, err := rt.PredictBatch(ctx, "noisy", "", ds.Graphs[:4]); err != nil {
			t.Fatalf("at-quota batch %d: %v", i, err)
		}
	}
	// Another tenant has its own account.
	if _, err := rt.PredictBatch(ctx, "quiet", "", ds.Graphs[:4]); err != nil {
		t.Fatalf("other tenant: %v", err)
	}

	ten := rt.Tenants()
	byName := map[string]TenantStatus{}
	for _, ts := range ten {
		byName[ts.Tenant] = ts
	}
	if byName["noisy"].Rejected != 1 || byName["noisy"].InFlight != 0 {
		t.Fatalf("noisy account %+v", byName["noisy"])
	}
	if byName["quiet"].Rejected != 0 {
		t.Fatalf("quiet account %+v", byName["quiet"])
	}
	if _, ok := byName[DefaultTenant]; !ok {
		t.Fatal("default tenant not pre-created")
	}
}

// TestRouterPlacementSpreads drives sequential traffic at a 4-replica
// model and checks power-of-two-choices actually lands work on every
// replica rather than pinning one.
func TestRouterPlacementSpreads(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	reg := NewRegistry(RegistryOptions{Replicas: 4, Engine: Options{Workers: 1}})
	defer reg.Close()
	if err := reg.Load("default", pred); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if _, err := rt.Predict(ctx, "", "", ds.Graphs[i%len(ds.Graphs)]); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := reg.model("default")
	var total uint64
	for _, rep := range m.replicas {
		n := rep.eng.Metrics().AcceptedGraphs
		if n == 0 {
			t.Fatalf("replica %d received no traffic over 200 placements", rep.id)
		}
		total += n
	}
	if total != 200 {
		t.Fatalf("replicas accepted %d graphs, want 200", total)
	}
}

// TestRouterSoakRollingSwap is the multi-replica acceptance soak, run
// under -race in CI: a 3-replica model takes sustained mixed single/batch
// traffic from a client fleet (including an always-over-quota tenant and
// an over-queue batch size) while rolling swaps walk the replicas between
// two models of different dimensions. At quiesce it asserts the hard
// invariants the architecture promises:
//
//   - zero failed in-flight requests across every rolling swap;
//   - exact conservation: client-observed answered graphs ==
//     Σ accepted == Σ processed over the replicas;
//   - quota rejections never touched an engine queue: engine-side
//     admissions account exactly for the answered graphs, and the quota
//     tenant's rejection count matches its client-side observations.
func TestRouterSoakRollingSwap(t *testing.T) {
	predA, ds := testModel(t, 1024, 1)
	predB, _ := testModel(t, 512, 99) // dimension change: swaps re-bind scratch
	reg := NewRegistry(RegistryOptions{
		Replicas: 3,
		Engine: Options{
			Workers:   2,
			MaxBatch:  8,
			MaxDelay:  50 * time.Microsecond,
			QueueSize: 64, // small enough for the 65-graph client to overrun
		},
	})
	if err := reg.Load("default", predA); err != nil {
		t.Fatal(err)
	}
	// Quota 100: wide enough that the 65-graph batch passes admission and
	// exercises queue overload, tight enough for a 128-graph batch to shed.
	rt := NewRouter(reg, RouterOptions{TenantQuota: 100})

	duration := 800 * time.Millisecond
	if testing.Short() {
		duration = 150 * time.Millisecond
	}
	stop := make(chan struct{})
	go func() {
		time.Sleep(duration)
		close(stop)
	}()

	// Swapper: roll between the two models across all three replicas.
	var swaps atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := predA
			if i%2 == 1 {
				next = predB
			}
			if err := reg.Swap("default", next); err != nil {
				t.Errorf("rolling swap: %v", err)
				return
			}
			swaps.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var graphsOK, overloads, failures atomic.Uint64
	var quotaRejections atomic.Uint64
	ctx := context.Background()

	// Pool long enough for any batch window.
	pool := ds.Graphs
	for len(pool) < 128+len(ds.Graphs) {
		pool = append(pool, ds.Graphs...)
	}

	client := func(tenant string, batch int, wantQuotaReject bool) {
		defer wg.Done()
		out := make([]int, batch)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := i % len(ds.Graphs)
			var err error
			if batch == 1 {
				_, err = rt.Predict(ctx, tenant, "", pool[lo])
			} else {
				err = rt.PredictBatchInto(ctx, tenant, "", pool[lo:lo+batch], out)
			}
			switch {
			case err == nil:
				if wantQuotaReject {
					t.Error("over-quota batch was admitted")
					return
				}
				graphsOK.Add(uint64(batch))
			case errors.Is(err, ErrQuotaExceeded):
				if !wantQuotaReject {
					t.Errorf("tenant %q rejected by quota unexpectedly", tenant)
					return
				}
				quotaRejections.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloads.Add(1)
			default:
				failures.Add(1)
				t.Errorf("request failed in flight: %v", err)
				return
			}
		}
	}

	// Fleet: singles, mid batches, a segmented batch, one batch that can
	// overrun a replica queue (65 > QueueSize), and a tenant whose batch
	// always exceeds the quota (128 > 100) so every one of its calls must
	// shed at admission.
	for _, c := range []struct {
		tenant string
		batch  int
		reject bool
	}{
		{"t1", 1, false}, {"t1", 1, false}, {"t2", 3, false}, {"t2", 8, false},
		{"t3", 17, false}, {"t3", 65, false}, {"greedy", 128, true},
	} {
		wg.Add(1)
		go client(c.tenant, c.batch, c.reject)
	}
	wg.Wait()
	m, ok := reg.model("default") // grab the entry before Close empties the table
	if !ok {
		t.Fatal("model vanished during soak")
	}
	reg.Close() // drains every admitted request

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed in flight across %d rolling swaps", failures.Load(), swaps.Load())
	}
	if swaps.Load() == 0 {
		t.Fatal("no rolling swaps happened during the soak")
	}
	if quotaRejections.Load() == 0 {
		t.Fatal("the over-quota tenant was never rejected")
	}

	var accepted, processed, inflight uint64
	for _, rep := range m.replicas {
		em := rep.eng.Metrics()
		accepted += em.AcceptedGraphs
		processed += em.Processed
		inflight += em.InFlight
		if em.Reloads != swaps.Load() {
			t.Errorf("replica %d saw %d reloads, want %d (rolling swap skipped it)",
				rep.id, em.Reloads, swaps.Load())
		}
		if rep.inflight.Load() != 0 {
			t.Errorf("replica %d placement counter %d at quiesce", rep.id, rep.inflight.Load())
		}
	}
	if accepted != processed || inflight != 0 {
		t.Fatalf("fleet did not quiesce clean: accepted %d, processed %d, inflight %d",
			accepted, processed, inflight)
	}
	if accepted != graphsOK.Load() {
		t.Fatalf("replicas accepted %d graphs but clients saw %d answered "+
			"(quota rejections leaked into a queue, or answers were lost)",
			accepted, graphsOK.Load())
	}
	for _, ts := range rt.Tenants() {
		if ts.InFlight != 0 {
			t.Errorf("tenant %q in-flight %d at quiesce", ts.Tenant, ts.InFlight)
		}
		if ts.Tenant == "greedy" && ts.Rejected != quotaRejections.Load() {
			t.Errorf("greedy tenant rejected %d, clients counted %d", ts.Rejected, quotaRejections.Load())
		}
	}
	t.Logf("soak: %d graphs answered, %d overload shed, %d quota shed, %d rolling swaps across 3 replicas",
		graphsOK.Load(), overloads.Load(), quotaRejections.Load(), swaps.Load())
}
