package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"graphhd/internal/graph"
)

// TestHTTPFeedbackHardening pins the error contract of the feedback
// endpoint: every malformed request maps to a deliberate 4xx, never a
// 500, and a well-formed request is acknowledged with the accepted
// count. The trainer is attached mid-test so the no-trainer 404 is
// exercised against a model that otherwise serves fine.
func TestHTTPFeedbackHardening(t *testing.T) {
	m, ds := trainableModel(t, 2048, false)
	srv, rt := startTestStack(t, m.Snapshot(), RouterOptions{}, HandlerOptions{})
	wire := graph.ToJSON(ds.Graphs[0])
	label := ds.Labels[0]

	// Unknown model: 404 regardless of trainer state.
	resp, _ := postJSON(t, srv.URL+"/v1/models/nope/feedback", FeedbackRequest{Graph: wire, Label: &label})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}

	// Resident model without a trainer: also 404, with a distinct error.
	resp, body := postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Graph: wire, Label: &label})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no trainer: status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "trainer") {
		t.Fatalf("no-trainer 404 should name the trainer, got %s", body)
	}

	// Park snapshots far away so the trainer never promotes mid-test.
	if _, err := rt.reg.AttachTrainer("default", m, TrainerOptions{BufferSize: 64, SnapshotEvery: 1 << 20}); err != nil {
		t.Fatal(err)
	}

	// Label outside [0, k): 400 on both boundaries.
	for _, bad := range []int{-1, m.NumClasses()} {
		bad := bad
		resp, body = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Graph: wire, Label: &bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("label %d: status %d, want 400 (%s)", bad, resp.StatusCode, body)
		}
	}

	// Structurally broken requests: missing label, missing graph, empty
	// body, malformed JSON. All 400.
	resp, _ = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Graph: wire})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing label: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Label: &label})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing graph: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", resp.StatusCode)
	}
	raw, err := http.Post(srv.URL+"/v1/models/default/feedback", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", raw.StatusCode)
	}

	// A bad sample anywhere in a batch rejects the whole request.
	badLabel := -1
	resp, _ = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Samples: []FeedbackSample{
		{Graph: wire, Label: &label},
		{Graph: wire, Label: &badLabel},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch: status %d, want 400", resp.StatusCode)
	}
	tr, _ := rt.reg.Trainer("default")
	if got := tr.ingested.Load(); got != 0 {
		t.Fatalf("rejected batch must not half-apply: %d samples ingested", got)
	}

	// Well-formed single sample and batched form both land with counts.
	resp, body = postJSON(t, srv.URL+"/v1/feedback", FeedbackRequest{Graph: wire, Label: &label})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single feedback: status %d, want 202 (%s)", resp.StatusCode, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Accepted != 1 {
		t.Fatalf("single feedback accepted = %d, want 1", fr.Accepted)
	}
	l1, l2 := ds.Labels[1], ds.Labels[2]
	resp, body = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Samples: []FeedbackSample{
		{Graph: graph.ToJSON(ds.Graphs[1]), Label: &l1},
		{Graph: graph.ToJSON(ds.Graphs[2]), Label: &l2},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch feedback: status %d, want 202 (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Accepted != 2 {
		t.Fatalf("batch feedback accepted = %d, want 2", fr.Accepted)
	}

	// The trainer surfaces on the fleet listing and the model info
	// carries its serving revision.
	listResp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(listResp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(models.Trainers) != 1 || models.Trainers[0].Model != "default" {
		t.Fatalf("trainer missing from /v1/models: %+v", models.Trainers)
	}
}

// TestHTTPFeedbackBodyLimit caps the request body below the size of any
// real wire graph: the decode fails inside MaxBytesReader and the
// endpoint answers 400, not 500.
func TestHTTPFeedbackBodyLimit(t *testing.T) {
	m, ds := trainableModel(t, 2048, false)
	srv, rt := startTestStack(t, m.Snapshot(), RouterOptions{}, HandlerOptions{MaxBodyBytes: 64})
	if _, err := rt.reg.AttachTrainer("default", m, TrainerOptions{SnapshotEvery: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	label := ds.Labels[0]
	resp, body := postJSON(t, srv.URL+"/v1/feedback", FeedbackRequest{Graph: graph.ToJSON(ds.Graphs[0]), Label: &label})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestHTTPFeedbackBufferFull drives the 429 path with a hand-built,
// goroutine-less trainer so the buffer stays exactly as full as the test
// makes it: a two-sample batch against a one-slot buffer partially
// applies (202, accepted 1), and the next sample is shed with 429.
func TestHTTPFeedbackBufferFull(t *testing.T) {
	m, ds := trainableModel(t, 2048, false)
	srv, rt := startTestStack(t, m.Snapshot(), RouterOptions{}, HandlerOptions{})
	tr := &Trainer{
		reg:   rt.reg,
		name:  "default",
		model: m,
		opts:  TrainerOptions{}.withDefaults(),
		buf:   make(chan feedbackSample, 1),
		stop:  make(chan struct{}),
	}
	regm, ok := rt.reg.model("default")
	if !ok {
		t.Fatal("default model not resident")
	}
	regm.trainer.Store(tr)

	l0, l1 := ds.Labels[0], ds.Labels[1]
	resp, body := postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Samples: []FeedbackSample{
		{Graph: graph.ToJSON(ds.Graphs[0]), Label: &l0},
		{Graph: graph.ToJSON(ds.Graphs[1]), Label: &l1},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("partial ingest: status %d, want 202 (%s)", resp.StatusCode, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Accepted != 1 {
		t.Fatalf("partial ingest accepted = %d, want 1", fr.Accepted)
	}

	resp, body = postJSON(t, srv.URL+"/v1/models/default/feedback", FeedbackRequest{Graph: graph.ToJSON(ds.Graphs[0]), Label: &l0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full buffer: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "full") {
		t.Fatalf("429 body should explain the full buffer, got %s", body)
	}
	if got := tr.dropped.Load(); got != 2 {
		t.Fatalf("dropped = %d, want 2 (one from the batch, one from the retry)", got)
	}
}
