//go:build race

package serve

// raceEnabled reports whether the race detector instruments this build;
// sync.Pool intentionally drops puts under the detector, so pooled-path
// allocation assertions are skipped there.
const raceEnabled = true
