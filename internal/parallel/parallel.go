// Package parallel provides the shared worker-pool primitive used by every
// data-parallel loop in the repository: batch encoding, batch prediction
// and cross-validation fold execution. HDC workloads are embarrassingly
// parallel across samples, so a single dynamic-scheduling ForEach covers
// all of them without per-call goroutine tuning.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means
// GOMAXPROCS, and the result is clamped to n so short inputs never spawn
// idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n), distributing indices across up
// to workers goroutines (non-positive workers means GOMAXPROCS). Indices
// are handed out dynamically, so uneven per-item cost — large graphs next
// to small ones, heavyweight folds next to cheap ones — still balances.
// ForEach returns after every call completes. fn must be safe to call
// concurrently; writing to disjoint slice elements indexed by i is the
// intended result-collection pattern.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach for loop bodies that keep per-worker scratch
// state: fn additionally receives the worker index w in
// [0, Workers(workers, n)), and all calls sharing one w are made
// sequentially from a single goroutine. Callers index a slice of
// Workers(workers, n) scratch values by w to reuse buffers across items
// without synchronization — the pattern the encoder's batch APIs use for
// allocation-free encoding.
func ForEachWorker(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}
