// Package parallel provides the shared worker-pool primitive used by every
// data-parallel loop in the repository: batch encoding, batch prediction
// and cross-validation fold execution. HDC workloads are embarrassingly
// parallel across samples, so a single dynamic-scheduling ForEach covers
// all of them without per-call goroutine tuning.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means
// GOMAXPROCS, and the result is clamped to n so short inputs never spawn
// idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n), distributing indices across up
// to workers goroutines (non-positive workers means GOMAXPROCS). Indices
// are handed out dynamically, so uneven per-item cost — large graphs next
// to small ones, heavyweight folds next to cheap ones — still balances.
// ForEach returns after every call completes. fn must be safe to call
// concurrently; writing to disjoint slice elements indexed by i is the
// intended result-collection pattern.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach for loop bodies that keep per-worker scratch
// state: fn additionally receives the worker index w in
// [0, Workers(workers, n)), and all calls sharing one w are made
// sequentially from a single goroutine. Callers index a slice of
// Workers(workers, n) scratch values by w to reuse buffers across items
// without synchronization — the pattern the encoder's batch APIs use for
// allocation-free encoding.
func ForEachWorker(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// ForEachChunk is ForEachWorker for loop bodies that amortize work across
// a *range* of items: fn(w, lo, hi) is called for contiguous index ranges
// [lo, hi) of size up to chunk covering [0, n), ranges are handed out
// dynamically across up to workers goroutines, and all calls sharing one
// worker index w run sequentially on a single goroutine. This is the
// distribution primitive behind the cross-graph batch encoder, whose
// operand-plan dedup only pays off when each call sees many graphs at
// once. A non-positive chunk selects a single range per call.
func ForEachChunk(workers, n, chunk int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 || chunk > n {
		chunk = n
	}
	chunks := (n + chunk - 1) / chunk
	ForEachWorker(workers, chunks, func(w, i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(w, lo, hi)
	})
}
