package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachOrderIndependentResults(t *testing.T) {
	n := 500
	out := make([]int, n)
	ForEach(8, n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct{ req, n, want int }{
		{0, 100, min(maxprocs, 100)},
		{0, 1, 1},
		{3, 100, 3},
		{3, 2, 2},
		{-5, 2, min(maxprocs, 2)},
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.req, c.n); got != c.want {
			t.Fatalf("Workers(%d, %d) = %d, want %d", c.req, c.n, got, c.want)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForEachWorkerCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 203
		var hits [n]atomic.Int32
		maxW := Workers(workers, n)
		var outOfRange atomic.Bool
		ForEachWorker(workers, n, func(w, i int) {
			if w < 0 || w >= maxW {
				outOfRange.Store(true)
			}
			hits[i].Add(1)
		})
		if outOfRange.Load() {
			t.Fatalf("workers=%d: worker index outside [0,%d)", workers, maxW)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerSerializesPerWorker(t *testing.T) {
	// Calls sharing a worker index must come from one goroutine at a time,
	// so unsynchronized per-worker state is safe. Detect overlap with a
	// non-atomic-looking check guarded by atomics.
	const n = 500
	w := Workers(4, n)
	busy := make([]atomic.Bool, w)
	var overlap atomic.Bool
	ForEachWorker(4, n, func(wk, i int) {
		if !busy[wk].CompareAndSwap(false, true) {
			overlap.Store(true)
		}
		busy[wk].Store(false)
	})
	if overlap.Load() {
		t.Fatal("two concurrent calls shared a worker index")
	}
}

func TestForEachChunkCoversAllRanges(t *testing.T) {
	for _, tc := range []struct{ n, chunk, workers int }{
		{0, 4, 2}, {1, 4, 2}, {7, 3, 2}, {32, 32, 4}, {33, 32, 4},
		{100, 7, 3}, {10, 0, 2}, {10, -1, 1}, {10, 100, 4},
	} {
		var hits []atomic.Int32
		hits = make([]atomic.Int32, tc.n)
		maxChunk := tc.chunk
		if maxChunk <= 0 || maxChunk > tc.n {
			maxChunk = tc.n
		}
		var badRange atomic.Bool
		ForEachChunk(tc.workers, tc.n, tc.chunk, func(w, lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi || hi-lo > maxChunk {
				badRange.Store(true)
				return
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		if badRange.Load() {
			t.Fatalf("n=%d chunk=%d: malformed range", tc.n, tc.chunk)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", tc.n, tc.chunk, i, got)
			}
		}
	}
}

func TestForEachChunkSerializesPerWorker(t *testing.T) {
	const n = 400
	w := Workers(4, (n+6)/7)
	busy := make([]atomic.Bool, w)
	var overlap atomic.Bool
	ForEachChunk(4, n, 7, func(wk, lo, hi int) {
		if !busy[wk].CompareAndSwap(false, true) {
			overlap.Store(true)
		}
		busy[wk].Store(false)
	})
	if overlap.Load() {
		t.Fatal("two concurrent chunks shared a worker index")
	}
}
